package socialnet

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

var jt0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

// synthEvents builds a deterministic scrambled batch of unique
// (user, page) events with colliding timestamps.
func synthEvents(n int) []LikeEvent {
	r := rand.New(rand.NewSource(99))
	evs := make([]LikeEvent, n)
	for i := range evs {
		evs[i] = LikeEvent{
			// Few distinct instants: exercise the (user, page) tiebreak.
			At:     jt0.Add(time.Duration(r.Intn(n/4+1)) * time.Minute),
			User:   UserID(1 + i%37),
			Page:   PageID(1 + i/37),
			Source: LikeSource(i % 2),
		}
	}
	r.Shuffle(len(evs), func(i, k int) { evs[i], evs[k] = evs[k], evs[i] })
	return evs
}

func TestJournalCanonicalOrderAcrossShardAndWorkerCounts(t *testing.T) {
	evs := synthEvents(500)
	want := append([]LikeEvent(nil), evs...)
	sort.Slice(want, func(i, k int) bool { return eventLess(want[i], want[k]) })

	for _, shards := range []int{1, 4, 64} {
		for _, workers := range []int{1, 8} {
			j := NewJournal(shards)
			for _, ev := range evs {
				j.Append(ev)
			}
			if j.Len() != len(evs) {
				t.Fatalf("shards=%d: Len = %d, want %d", shards, j.Len(), len(evs))
			}
			got := j.EventsCanonical(workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d workers=%d: canonical order diverges", shards, workers)
			}
		}
	}
}

func TestJournalCanonicalCacheInvalidatesOnAppend(t *testing.T) {
	j := NewJournal(4)
	evs := synthEvents(100)
	for _, ev := range evs[:50] {
		j.Append(ev)
	}
	first := j.EventsCanonical(2)
	if len(first) != 50 {
		t.Fatalf("first snapshot = %d events", len(first))
	}
	// Cached: same underlying slice back.
	again := j.EventsCanonical(2)
	if &first[0] != &again[0] {
		t.Fatal("unchanged journal should return the cached snapshot")
	}
	for _, ev := range evs[50:] {
		j.Append(ev)
	}
	full := j.EventsCanonical(2)
	if len(full) != 100 {
		t.Fatalf("post-append snapshot = %d events", len(full))
	}
	for i := 1; i < len(full); i++ {
		if eventLess(full[i], full[i-1]) {
			t.Fatalf("snapshot not canonically sorted at %d", i)
		}
	}
}

func TestJournalReaderDeliversExactlyOnce(t *testing.T) {
	j := NewJournal(8)
	evs := synthEvents(120)
	r := j.NewReader()
	if batch := r.Next(); batch != nil {
		t.Fatalf("empty journal returned %d events", len(batch))
	}

	var got []LikeEvent
	for i, ev := range evs {
		j.Append(ev)
		if i%17 == 0 {
			got = append(got, r.Next()...)
		}
	}
	got = append(got, r.Next()...)
	if r.Offset() != len(evs) {
		t.Fatalf("Offset = %d, want %d", r.Offset(), len(evs))
	}
	if batch := r.Next(); batch != nil {
		t.Fatalf("drained reader returned %d events", len(batch))
	}

	// Exactly once: same multiset as the canonical view.
	sort.Slice(got, func(i, k int) bool { return eventLess(got[i], got[k]) })
	if !reflect.DeepEqual(got, j.EventsCanonical(1)) {
		t.Fatal("reader lost or duplicated events")
	}
}

func TestStoreWritePathsLandInJournal(t *testing.T) {
	st := NewShardedStore(8)
	u1 := st.AddUser(User{Country: CountryUSA})
	u2 := st.AddUser(User{Country: CountryUSA})
	page, err := st.AddPage(Page{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	amb1, _ := st.AddPage(Page{Name: "ambient-1"})
	amb2, _ := st.AddPage(Page{Name: "ambient-2"})

	if err := st.AddLike(u1, page, jt0.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := st.AddLike(u2, page, jt0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := st.AddHistory(u1, []Like{
		{Page: amb1, At: jt0.Add(-time.Hour)},
		{Page: amb2, At: jt0.Add(-2 * time.Hour)},
	}); err != nil {
		t.Fatal(err)
	}

	evs := st.Journal().EventsCanonical(1)
	if len(evs) != 4 {
		t.Fatalf("journal holds %d events, want 4", len(evs))
	}
	// Canonical order: the two histories (earlier), then u2's like, then u1's.
	wantUsers := []UserID{u1, u1, u2, u1}
	wantSources := []LikeSource{SourceHistory, SourceHistory, SourceLike, SourceLike}
	for i, ev := range evs {
		if ev.User != wantUsers[i] || ev.Source != wantSources[i] {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if evs[2].Like() != (Like{User: u2, Page: page, At: jt0.Add(time.Hour)}) {
		t.Fatalf("Like() = %+v", evs[2].Like())
	}
}

func TestPageEventsSinceCursor(t *testing.T) {
	st := NewStore()
	page, err := st.AddPage(Page{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	var users []UserID
	for i := 0; i < 10; i++ {
		users = append(users, st.AddUser(User{Country: CountryUSA}))
	}
	for i := 0; i < 6; i++ {
		if err := st.AddLike(users[i], page, jt0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}

	batch, cur := st.PageEventsSince(page, 0)
	if len(batch) != 6 || cur != 6 {
		t.Fatalf("first read: %d events, cursor %d", len(batch), cur)
	}
	// Interleave a sorted read: it must not disturb the cursor space.
	if got := st.LikesOfPage(page); len(got) != 6 {
		t.Fatalf("LikesOfPage = %d", len(got))
	}
	for i := 6; i < 10; i++ {
		if err := st.AddLike(users[i], page, jt0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	batch, cur = st.PageEventsSince(page, cur)
	if len(batch) != 4 || cur != 10 {
		t.Fatalf("second read: %d events, cursor %d", len(batch), cur)
	}
	for i, ev := range batch {
		if ev.User != users[6+i] {
			t.Fatalf("batch out of order: %+v", batch)
		}
	}
	if batch, cur = st.PageEventsSince(page, cur); batch != nil || cur != 10 {
		t.Fatalf("drained cursor returned %d events, cursor %d", len(batch), cur)
	}
	// A cursor past the end (corrupt caller state) stays put.
	if batch, cur = st.PageEventsSince(page, 99); batch != nil || cur != 99 {
		t.Fatalf("overshot cursor: %d events, cursor %d", len(batch), cur)
	}
}

// TestPageEventsPage pins the bounded cursor read the HTTP API's cursor
// paging serves: windows are limit-sized, successive cursors tile the
// stream exactly once, and likes appended mid-pagination — even with
// timestamps earlier than windows already delivered — appear exactly
// once at the tail instead of shifting delivered windows.
func TestPageEventsPage(t *testing.T) {
	st := NewStore()
	page, err := st.AddPage(Page{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	var users []UserID
	for i := 0; i < 12; i++ {
		users = append(users, st.AddUser(User{Country: CountryUSA}))
	}
	for i := 0; i < 7; i++ {
		if err := st.AddLike(users[i], page, jt0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}

	batch, cur := st.PageEventsPage(page, 0, 3)
	if len(batch) != 3 || cur != 3 {
		t.Fatalf("first window: %d events, cursor %d", len(batch), cur)
	}
	// A like lands mid-pagination with a timestamp BEFORE everything
	// already delivered: it must not disturb undelivered windows.
	if err := st.AddLike(users[7], page, jt0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	seen := map[UserID]bool{batch[0].User: true, batch[1].User: true, batch[2].User: true}
	for cur < 8 {
		batch, cur = st.PageEventsPage(page, cur, 3)
		if len(batch) == 0 {
			t.Fatalf("short read at cursor %d", cur)
		}
		for _, ev := range batch {
			if seen[ev.User] {
				t.Fatalf("user %d delivered twice", ev.User)
			}
			seen[ev.User] = true
		}
	}
	if len(seen) != 8 || !seen[users[7]] {
		t.Fatalf("delivered %d of 8 likers (late liker seen: %v)", len(seen), seen[users[7]])
	}
	// Drained and overshot cursors stay put; limit < 1 means unbounded.
	if batch, cur = st.PageEventsPage(page, 8, 3); batch != nil || cur != 8 {
		t.Fatalf("drained cursor: %d events, cursor %d", len(batch), cur)
	}
	if batch, cur = st.PageEventsPage(page, 99, 3); batch != nil || cur != 99 {
		t.Fatalf("overshot cursor: %d events, cursor %d", len(batch), cur)
	}
	if batch, cur = st.PageEventsPage(page, 0, 0); len(batch) != 8 || cur != 8 {
		t.Fatalf("unbounded read: %d events, cursor %d", len(batch), cur)
	}
}

// TestLikesOfPageSortedViewSurvivesAppends pins the regression the
// sorted-copy cache exists for: reading the sorted view between cursor
// reads must never reorder the append-only stream.
func TestLikesOfPageSortedViewSurvivesAppends(t *testing.T) {
	st := NewStore()
	page, _ := st.AddPage(Page{Name: "p"})
	var users []UserID
	for i := 0; i < 8; i++ {
		users = append(users, st.AddUser(User{Country: CountryUSA}))
	}
	// Append out of time order (possible for non-honeypot pages).
	at := []int{5, 1, 7, 3}
	for i, h := range at {
		if err := st.AddLike(users[i], page, jt0.Add(time.Duration(h)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	first, cur := st.PageEventsSince(page, 0)
	sorted1 := st.LikesOfPage(page)
	for i := 1; i < len(sorted1); i++ {
		if sorted1[i].At.Before(sorted1[i-1].At) {
			t.Fatalf("sorted view unsorted: %+v", sorted1)
		}
	}
	at2 := []int{2, 6, 0, 4}
	for i, h := range at2 {
		if err := st.AddLike(users[4+i], page, jt0.Add(time.Duration(h)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	second, cur2 := st.PageEventsSince(page, cur)
	if cur2 != 8 || len(second) != 4 {
		t.Fatalf("second batch = %d, cursor %d", len(second), cur2)
	}
	// Exactly-once across the interleaved sorted read.
	seen := map[UserID]bool{}
	for _, ev := range append(first, second...) {
		if seen[ev.User] {
			t.Fatalf("user %d delivered twice", ev.User)
		}
		seen[ev.User] = true
	}
	if len(seen) != 8 {
		t.Fatalf("delivered %d of 8 likes", len(seen))
	}
	if got := st.LikesOfPage(page); len(got) != 8 {
		t.Fatalf("final sorted view = %d", len(got))
	}
}

// TestJournalConcurrentAppendsAndReads exercises the journal under the
// race detector: parallel AddLike traffic with canonical snapshots,
// cursor reads, and an incremental reader in flight.
func TestJournalConcurrentAppendsAndReads(t *testing.T) {
	st := NewShardedStore(16)
	const nUsers, nPages = 64, 8
	var users []UserID
	var pages []PageID
	for i := 0; i < nUsers; i++ {
		users = append(users, st.AddUser(User{Country: CountryUSA}))
	}
	for i := 0; i < nPages; i++ {
		p, _ := st.AddPage(Page{Name: fmt.Sprintf("p%d", i)})
		pages = append(pages, p)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < nUsers*nPages; i += 4 {
				u := users[i%nUsers]
				p := pages[i/nUsers]
				if err := st.AddLike(u, p, jt0.Add(time.Duration(i)*time.Second)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := st.Journal().NewReader()
		total := 0
		for i := 0; i < 50; i++ {
			total += len(r.Next())
			_ = st.Journal().EventsCanonical(2)
			_, _ = st.PageEventsSince(pages[0], 0)
		}
		total += len(r.Next())
	}()
	wg.Wait()
	<-done

	evs := st.Journal().EventsCanonical(4)
	if len(evs) != nUsers*nPages {
		t.Fatalf("journal holds %d events, want %d", len(evs), nUsers*nPages)
	}
	for i := 1; i < len(evs); i++ {
		if eventLess(evs[i], evs[i-1]) {
			t.Fatalf("canonical snapshot unsorted at %d", i)
		}
	}
}

func TestSnapshotRoundTripRebuildsJournal(t *testing.T) {
	st := NewStore()
	u := st.AddUser(User{Country: CountryUSA})
	page, _ := st.AddPage(Page{Name: "p"})
	amb, _ := st.AddPage(Page{Name: "ambient"})
	if err := st.AddLike(u, page, jt0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := st.AddHistory(u, []Like{{Page: amb, At: jt0}}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := st2.Journal().EventsCanonical(1)
	want := st.Journal().EventsCanonical(1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journal after round trip = %+v, want %+v", got, want)
	}
}
