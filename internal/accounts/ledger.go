package accounts

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/parallel"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// Ledger tracks which cohort each account belongs to so page-like
// histories can be materialized lazily — only for the accounts that end
// up being observed (honeypot likers and the Figure 4 baseline sample).
type Ledger struct {
	pop   *socialnet.Population
	specs map[socialnet.UserID]*CoverSpec
	done  map[socialnet.UserID]bool
	now   time.Time
}

// NewLedger creates a ledger; now anchors the "past year" history window.
func NewLedger(pop *socialnet.Population, now time.Time) *Ledger {
	return &Ledger{
		pop:   pop,
		specs: make(map[socialnet.UserID]*CoverSpec),
		done:  make(map[socialnet.UserID]bool),
		now:   now,
	}
}

// Register associates a cohort's members with its cover spec.
func (l *Ledger) Register(c *Cohort) {
	spec := c.Spec.Cover
	for _, m := range c.Members {
		l.specs[m] = &spec
	}
}

// Registered reports whether the account has a cover spec.
func (l *Ledger) Registered(u socialnet.UserID) bool {
	_, ok := l.specs[u]
	return ok
}

// Materialize generates the page-like history for each given account that
// has a registered spec and has not been materialized yet. Organic
// accounts (no spec) are skipped: their likes were generated eagerly with
// the population. It returns the number of history likes written. It is
// a serial convenience wrapper over MaterializeSeeded, seeding the
// split streams from the caller's generator.
func (l *Ledger) Materialize(r *rand.Rand, st *socialnet.Store, users []socialnet.UserID) (int, error) {
	return l.MaterializeSeeded(r.Int63(), st, users, 1)
}

// MaterializeSeeded is Materialize with per-account randomness split
// from a root seed and generation fanned out over a worker pool: each
// pending account's history draws from its own stream
// (seed, "history", userID) and lands on its own store stripe, so the
// generated world is bit-identical for any worker count — including
// workers == 1, the serial path. Accounts already materialized are
// skipped, exactly as in Materialize.
func (l *Ledger) MaterializeSeeded(seed int64, st *socialnet.Store, users []socialnet.UserID, workers int) (int, error) {
	// Deterministic, deduped worklist regardless of caller's ordering.
	sorted := append([]socialnet.UserID(nil), users...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	type item struct {
		u    socialnet.UserID
		spec *CoverSpec
	}
	var work []item
	for i, u := range sorted {
		if i > 0 && u == sorted[i-1] {
			continue
		}
		spec, ok := l.specs[u]
		if !ok || l.done[u] {
			continue
		}
		work = append(work, item{u, spec})
	}

	counts := make([]int, len(work))
	err := parallel.ForEach(workers, len(work), func(i int) error {
		r := stats.SplitRandN(seed, "history", int64(work[i].u))
		n, err := l.materializeOne(r, st, work[i].u, work[i].spec)
		counts[i] = n
		return err
	})
	// Mark every account whose history generation succeeded before
	// surfacing any error, so a retry does not double-import.
	total := 0
	for i, it := range work {
		if counts[i] > 0 || err == nil {
			l.done[it.u] = true
			total += counts[i]
		}
	}
	if err != nil {
		return total, err
	}
	return total, nil
}

func (l *Ledger) materializeOne(r *rand.Rand, st *socialnet.Store, u socialnet.UserID, spec *CoverSpec) (int, error) {
	mu, err := stats.LogNormalForMedian(spec.LikeMedian)
	if err != nil {
		return 0, err
	}
	dist, err := stats.NewLogNormal(mu, spec.LikeSigma, 1, float64(spec.MaxLikes))
	if err != nil {
		return 0, err
	}
	k := dist.SampleInt(r)
	if k > spec.MaxLikes {
		k = spec.MaxLikes
	}

	// Per-slice quotas: proportional targets, with overflow from full
	// slices redistributed to slices that still have unused pages, and
	// only the final remainder falling through to the ambient catalog.
	quota := make([]int, len(spec.Slices))
	assigned := 0
	for i, sl := range spec.Slices {
		n := int(float64(k)*sl.Frac + 0.5)
		if n > len(sl.Pages) {
			n = len(sl.Pages)
		}
		if assigned+n > k {
			n = k - assigned
		}
		quota[i] = n
		assigned += n
	}
	fracSum := 0.0
	for _, sl := range spec.Slices {
		fracSum += sl.Frac
	}
	want := int(float64(k)*fracSum + 0.5)
	if want > k {
		want = k
	}
	for assigned < want {
		grew := false
		for i, sl := range spec.Slices {
			if assigned >= want {
				break
			}
			if quota[i] < len(sl.Pages) {
				quota[i]++
				assigned++
				grew = true
			}
		}
		if !grew {
			break // all slices exhausted
		}
	}

	var pages []socialnet.PageID
	for i, sl := range spec.Slices {
		if quota[i] == 0 {
			continue
		}
		idx, err := stats.SampleWithoutReplacement(r, len(sl.Pages), quota[i])
		if err != nil {
			return 0, err
		}
		sort.Ints(idx)
		for _, j := range idx {
			pages = append(pages, sl.Pages[j])
		}
	}
	pages = append(pages, l.pop.SampleAmbientPages(r, k-assigned)...)

	likes := make([]socialnet.Like, 0, len(pages))
	if spec.Bursty {
		// Job bursts: consecutive runs of ~40-150 likes inside 2-hour
		// windows, spread over the past ~10 months. This is the account-
		// level bot signature the burst detector keys on.
		i := 0
		for i < len(pages) {
			run := 40 + r.Intn(111)
			if i+run > len(pages) {
				run = len(pages) - i
			}
			burstStart := l.now.Add(-time.Duration(1+r.Intn(300*24)) * time.Hour)
			for j := 0; j < run; j++ {
				at := burstStart.Add(time.Duration(r.Int63n(int64(2 * time.Hour))))
				likes = append(likes, socialnet.Like{Page: pages[i+j], At: at})
			}
			i += run
		}
	} else {
		for _, p := range pages {
			at := l.now.Add(-time.Duration(1+r.Int63n(365*24)) * time.Hour)
			likes = append(likes, socialnet.Like{Page: p, At: at})
		}
	}
	if err := st.AddHistory(u, likes); err != nil {
		return 0, err
	}
	return len(likes), nil
}

// MaterializedCount returns how many accounts have histories generated.
func (l *Ledger) MaterializedCount() int { return len(l.done) }

// MakePageBlock creates n non-honeypot pages forming a named block of
// the page universe and returns their IDs. Blocks are the unit of
// page-set overlap between cohorts (see CoverSlice).
func MakePageBlock(st *socialnet.Store, name, category string, n int, createdAt time.Time) ([]socialnet.PageID, error) {
	if n < 1 {
		return nil, fmt.Errorf("accounts: block %q size %d must be >=1", name, n)
	}
	out := make([]socialnet.PageID, 0, n)
	for i := 0; i < n; i++ {
		id, err := st.AddPage(socialnet.Page{
			Name:      fmt.Sprintf("%s-%05d", name, i),
			Category:  category,
			CreatedAt: createdAt,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	return out, nil
}

// MakeJobPortfolio creates n non-honeypot "customer" pages for a farm and
// returns their IDs. Each farm's accounts like pages from their own
// portfolio, producing the within-farm page-set overlap of Figure 5(a).
func MakeJobPortfolio(st *socialnet.Store, farm string, n int, createdAt time.Time) ([]socialnet.PageID, error) {
	return MakePageBlock(st, farm+"-job", "customer", n, createdAt)
}
