package accounts

import (
	"testing"

	"repro/internal/socialnet"
)

// seededWorld builds a small world plus a registered cohort and returns
// the store, ledger, and members.
func seededWorld(t *testing.T, seed int64) (*socialnet.Store, *Ledger, []socialnet.UserID) {
	t.Helper()
	r, st, pop := smallWorld(t, seed)
	led := NewLedger(pop, t0)
	c, err := Build(r, st, pop, islandSpec(120))
	if err != nil {
		t.Fatal(err)
	}
	led.Register(c)
	return st, led, c.Members
}

// TestMaterializeSeededDeterministicAcrossWorkers: the same seed and
// worklist yield identical histories for any worker count.
func TestMaterializeSeededDeterministicAcrossWorkers(t *testing.T) {
	histories := func(workers int) (int, map[socialnet.UserID][]socialnet.Like) {
		st, led, members := seededWorld(t, 4)
		n, err := led.MaterializeSeeded(99, st, members, workers)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[socialnet.UserID][]socialnet.Like, len(members))
		for _, m := range members {
			out[m] = st.LikesOfUser(m)
		}
		return n, out
	}
	nSerial, serial := histories(1)
	for _, workers := range []int{4, 16} {
		n, conc := histories(workers)
		if n != nSerial {
			t.Fatalf("workers=%d wrote %d likes, serial wrote %d", workers, n, nSerial)
		}
		for u, likes := range serial {
			got := conc[u]
			if len(got) != len(likes) {
				t.Fatalf("workers=%d: user %d history length %d vs %d", workers, u, len(got), len(likes))
			}
			for i := range likes {
				if got[i] != likes[i] {
					t.Fatalf("workers=%d: user %d like %d differs", workers, u, i)
				}
			}
		}
	}
}

// TestMaterializeSeededIdempotent: a second call writes nothing, same
// as the serial Materialize contract.
func TestMaterializeSeededIdempotent(t *testing.T) {
	st, led, members := seededWorld(t, 5)
	first, err := led.MaterializeSeeded(7, st, members, 4)
	if err != nil {
		t.Fatal(err)
	}
	if first == 0 {
		t.Fatal("materialize wrote nothing")
	}
	again, err := led.MaterializeSeeded(7, st, members, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("second materialize wrote %d likes", again)
	}
	if led.MaterializedCount() != len(members) {
		t.Fatalf("materialized count = %d, want %d", led.MaterializedCount(), len(members))
	}
}

// TestMaterializeSeededDedupesWorklist: duplicate IDs in the request
// must not double-import a history.
func TestMaterializeSeededDedupesWorklist(t *testing.T) {
	st, led, members := seededWorld(t, 6)
	dup := append(append([]socialnet.UserID(nil), members[:10]...), members[:10]...)
	if _, err := led.MaterializeSeeded(3, st, dup, 8); err != nil {
		t.Fatal(err)
	}
	st2, led2, members2 := seededWorld(t, 6)
	if _, err := led2.MaterializeSeeded(3, st2, members2[:10], 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if a, b := st.LikeCountOfUser(members[i]), st2.LikeCountOfUser(members2[i]); a != b {
			t.Fatalf("duplicated worklist changed history size: %d vs %d", a, b)
		}
	}
}
