// Package accounts builds the account cohorts behind both sides of the
// study: the click-prone users that Facebook ad campaigns attract and
// the fake-account pools that like farms operate. A cohort couples
//
//   - demographics (gender/age/country mix per Table 2),
//   - friendship topology (the §4.3 signatures: isolated pairs/triplets
//     for SocialFormula/AuthenticLikes/MammothSocials, one well-connected
//     core for BoostLikes, near-isolation for ad clickers),
//   - declared friend-count distributions (Table 3 averages/medians), and
//   - a lazily materialized page-like history ("cover likes") that
//     reproduces Figure 4's inflated like counts and Figure 5(a)'s
//     page-set overlaps.
//
// Histories are lazy because only accounts that actually like a honeypot
// (or land in the Figure 4 baseline sample) are ever crawled — exactly
// the visibility the paper's authors had — and because materializing
// thousand-like histories for every pool account would dominate memory.
package accounts

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// TopologyKind selects the friendship structure among cohort members.
type TopologyKind int

// Topology kinds.
const (
	// TopologyIslands: members sit in pairs/triplets, mostly with
	// non-delivering shadow partners, occasionally with each other
	// (SF/AL/MS signature).
	TopologyIslands TopologyKind = iota
	// TopologyCore: members form one connected Watts–Strogatz core
	// (BoostLikes signature).
	TopologyCore
	// TopologySparse: members have no intra-cohort structure beyond
	// hubs (ad-clicker cohorts; FB likers showed only 6 direct edges).
	TopologySparse
)

// TopologySpec configures the structural friendships of a cohort.
type TopologySpec struct {
	Kind TopologyKind

	// InternalPairFrac (islands): fraction of members whose island is
	// formed with other members; the rest pair with shadows. Drives the
	// count of direct liker–liker edges in Table 3.
	InternalPairFrac float64
	// TripletFrac (islands): fraction of islands that are triplets.
	TripletFrac float64

	// CoreK / CoreBeta (core): Watts–Strogatz parameters.
	CoreK    int
	CoreBeta float64

	// HubCount / HubLinksMean: shadow "hub" accounts shared between
	// members; two members sharing a hub become a 2-hop pair (Figure
	// 3(b), Table 3 last column).
	HubCount     int
	HubLinksMean float64

	// OrganicLinksMean: structural edges into the organic population,
	// giving likers visible real-looking friends.
	OrganicLinksMean float64

	// DeclaredMedian / DeclaredSigma: lognormal declared friend-count
	// (Table 3 column 4-5: e.g. BoostLikes median 850, SocialFormula
	// 155, MammothSocials 68).
	DeclaredMedian float64
	DeclaredSigma  float64
	// DeclaredMedian2 / DeclaredFrac2 describe an optional second,
	// cheaper stratum: DeclaredFrac2 of accounts draw their friend
	// count from a lognormal with this median instead. The AL/MS
	// operator pool mixes well-padded accounts (median ~343 among AL
	// likers) with near-bare ones (median 68 among MS likers, 46 in
	// the reused ALMS group).
	DeclaredMedian2 float64
	DeclaredFrac2   float64
}

// Validate checks the topology parameters.
func (t *TopologySpec) Validate(size int) error {
	switch t.Kind {
	case TopologyIslands:
		if t.InternalPairFrac < 0 || t.InternalPairFrac > 1 {
			return fmt.Errorf("accounts: internal pair fraction %v out of [0,1]", t.InternalPairFrac)
		}
		if t.TripletFrac < 0 || t.TripletFrac > 1 {
			return fmt.Errorf("accounts: triplet fraction %v out of [0,1]", t.TripletFrac)
		}
	case TopologyCore:
		if t.CoreK < 2 || t.CoreK%2 != 0 {
			return fmt.Errorf("accounts: core k=%d must be even >=2", t.CoreK)
		}
		if size <= t.CoreK {
			return fmt.Errorf("accounts: cohort size %d too small for core k=%d", size, t.CoreK)
		}
		if t.CoreBeta < 0 || t.CoreBeta > 1 {
			return fmt.Errorf("accounts: core beta %v out of [0,1]", t.CoreBeta)
		}
	case TopologySparse:
		// nothing
	default:
		return fmt.Errorf("accounts: unknown topology kind %d", t.Kind)
	}
	if t.HubCount < 0 || t.HubLinksMean < 0 || t.OrganicLinksMean < 0 {
		return fmt.Errorf("accounts: negative hub/organic parameters")
	}
	if t.DeclaredMedian <= 0 || t.DeclaredSigma <= 0 {
		return fmt.Errorf("accounts: declared friend distribution (median=%v sigma=%v) must be positive", t.DeclaredMedian, t.DeclaredSigma)
	}
	if t.DeclaredFrac2 < 0 || t.DeclaredFrac2 > 1 {
		return fmt.Errorf("accounts: declared stratum-2 fraction %v out of [0,1]", t.DeclaredFrac2)
	}
	if t.DeclaredFrac2 > 0 && t.DeclaredMedian2 <= 0 {
		return fmt.Errorf("accounts: declared stratum-2 median %v must be positive", t.DeclaredMedian2)
	}
	return nil
}

// CoverSlice directs a fraction of a cohort's cover likes at one page
// block. Which blocks cohorts share determines the Figure 5(a) overlap
// structure: campaigns of the same farm share job portfolios (near-
// identical page sets), clicker markets share an "ad-world" block
// (moderate similarity among FB campaigns), and everyone shares a small
// global head (the noticeable-but-low cross-channel overlap).
type CoverSlice struct {
	Name  string
	Pages []socialnet.PageID
	Frac  float64
}

// CoverSpec configures the lazily generated page-like history of cohort
// members.
type CoverSpec struct {
	// LikeMedian / LikeSigma: lognormal total like count. Farm accounts
	// carry median 1200–1800, ad clickers 600–1000, BoostLikes ~63
	// (Figure 4).
	LikeMedian float64
	LikeSigma  float64
	// MaxLikes truncates the tail (paper observed up to ~10,000).
	MaxLikes int
	// Slices partition the likes across page blocks; fractions should
	// sum to <= 1, with any remainder drawn Zipf-weighted from the
	// ambient catalog. Empty slices = all-ambient.
	Slices []CoverSlice
	// Bursty timestamps: when true, history likes cluster into 2-hour
	// job bursts over past months (bot signature feeding the burst
	// detector); otherwise they spread uniformly over the past year.
	Bursty bool
}

// Validate checks the cover parameters.
func (c *CoverSpec) Validate() error {
	if c.LikeMedian <= 0 || c.LikeSigma <= 0 {
		return fmt.Errorf("accounts: cover like distribution (median=%v sigma=%v) must be positive", c.LikeMedian, c.LikeSigma)
	}
	if c.MaxLikes < 1 {
		return fmt.Errorf("accounts: max likes %d must be >=1", c.MaxLikes)
	}
	total := 0.0
	for _, sl := range c.Slices {
		if sl.Frac < 0 || sl.Frac > 1 {
			return fmt.Errorf("accounts: cover slice %q fraction %v out of [0,1]", sl.Name, sl.Frac)
		}
		if sl.Frac > 0 && len(sl.Pages) == 0 {
			return fmt.Errorf("accounts: cover slice %q has no pages", sl.Name)
		}
		total += sl.Frac
	}
	if total > 1+1e-9 {
		return fmt.Errorf("accounts: cover slice fractions sum to %v > 1", total)
	}
	return nil
}

// CohortSpec fully describes a cohort.
type CohortSpec struct {
	Name     string
	Size     int
	Kind     socialnet.AccountKind
	Operator string

	// CountryMix draws member countries (e.g. SocialFormula's pool is
	// Turkish regardless of what the customer ordered).
	CountryMix *stats.Categorical
	Profile    *socialnet.Profile

	FriendsPublicFrac float64
	SearchableFrac    float64

	Topology TopologySpec
	Cover    CoverSpec

	CreatedAt time.Time
}

// Validate checks the cohort spec.
func (s *CohortSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("accounts: cohort without name")
	}
	if s.Size < 1 {
		return fmt.Errorf("accounts: cohort %s size %d must be >=1", s.Name, s.Size)
	}
	if s.CountryMix == nil {
		return fmt.Errorf("accounts: cohort %s has nil country mix", s.Name)
	}
	if s.Profile == nil {
		return fmt.Errorf("accounts: cohort %s has nil profile", s.Name)
	}
	if err := s.Profile.Validate(); err != nil {
		return fmt.Errorf("accounts: cohort %s: %w", s.Name, err)
	}
	if s.FriendsPublicFrac < 0 || s.FriendsPublicFrac > 1 || s.SearchableFrac < 0 || s.SearchableFrac > 1 {
		return fmt.Errorf("accounts: cohort %s fractions out of [0,1]", s.Name)
	}
	if err := s.Topology.Validate(s.Size); err != nil {
		return fmt.Errorf("accounts: cohort %s: %w", s.Name, err)
	}
	if err := s.Cover.Validate(); err != nil {
		return fmt.Errorf("accounts: cohort %s: %w", s.Name, err)
	}
	return nil
}

// Cohort is a built account pool.
type Cohort struct {
	Spec    CohortSpec
	Members []socialnet.UserID
	// Shadows are island partners that never deliver likes; Hubs are
	// shared shadow friends creating mutual-friend (2-hop) relations.
	Shadows []socialnet.UserID
	Hubs    []socialnet.UserID

	byCountry map[string][]socialnet.UserID
}

// Build materializes a cohort into the store: accounts, shadows, hubs,
// and structural friendships. Histories are NOT generated here; register
// the cohort with a Ledger and call Materialize for the accounts that
// end up observed.
func Build(r *rand.Rand, st *socialnet.Store, pop *socialnet.Population, spec CohortSpec) (*Cohort, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Cohort{Spec: spec, byCountry: make(map[string][]socialnet.UserID)}

	declMu, err := stats.LogNormalForMedian(spec.Topology.DeclaredMedian)
	if err != nil {
		return nil, err
	}
	declDist, err := stats.NewLogNormal(declMu, spec.Topology.DeclaredSigma, 1, 20000)
	if err != nil {
		return nil, err
	}
	var declDist2 *stats.LogNormal
	if spec.Topology.DeclaredFrac2 > 0 {
		mu2, err := stats.LogNormalForMedian(spec.Topology.DeclaredMedian2)
		if err != nil {
			return nil, err
		}
		declDist2, err = stats.NewLogNormal(mu2, spec.Topology.DeclaredSigma, 1, 20000)
		if err != nil {
			return nil, err
		}
	}

	for i := 0; i < spec.Size; i++ {
		country := spec.CountryMix.Sample(r)
		declared := declDist.SampleInt(r)
		if declDist2 != nil && stats.Bernoulli(r, spec.Topology.DeclaredFrac2) {
			declared = declDist2.SampleInt(r)
		}
		u := socialnet.User{
			Gender:          spec.Profile.SampleGender(r),
			Age:             spec.Profile.SampleAge(r),
			Country:         country,
			HomeTown:        socialnet.TownFor(r, country),
			CurrentTown:     socialnet.TownFor(r, country),
			FriendsPublic:   stats.Bernoulli(r, spec.FriendsPublicFrac),
			Searchable:      stats.Bernoulli(r, spec.SearchableFrac),
			DeclaredFriends: declared,
			Kind:            spec.Kind,
			Operator:        spec.Operator,
			CreatedAt:       spec.CreatedAt,
		}
		id := st.AddUser(u)
		c.Members = append(c.Members, id)
		c.byCountry[country] = append(c.byCountry[country], id)
	}

	if err := c.buildTopology(r, st, pop); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cohort) buildTopology(r *rand.Rand, st *socialnet.Store, pop *socialnet.Population) error {
	spec := c.Spec
	ids := make([]int64, len(c.Members))
	for i, m := range c.Members {
		ids[i] = int64(m)
	}

	switch spec.Topology.Kind {
	case TopologyCore:
		g, err := graph.WattsStrogatz(r, ids, spec.Topology.CoreK, spec.Topology.CoreBeta)
		if err != nil {
			return err
		}
		for _, e := range g.Edges() {
			if err := st.Friend(socialnet.UserID(e[0]), socialnet.UserID(e[1])); err != nil {
				return err
			}
		}
	case TopologyIslands:
		// Internal islands among members.
		nInternal := int(float64(len(c.Members)) * spec.Topology.InternalPairFrac)
		if nInternal > len(c.Members) {
			nInternal = len(c.Members)
		}
		if nInternal >= 2 {
			idx, err := stats.SampleWithoutReplacement(r, len(c.Members), nInternal)
			if err != nil {
				return err
			}
			internal := make([]int64, nInternal)
			for i, j := range idx {
				internal[i] = int64(c.Members[j])
			}
			g, err := graph.PairsAndTriplets(r, internal, spec.Topology.TripletFrac)
			if err != nil {
				return err
			}
			for _, e := range g.Edges() {
				if err := st.Friend(socialnet.UserID(e[0]), socialnet.UserID(e[1])); err != nil {
					return err
				}
			}
		}
		// External islands: members without an internal island partner
		// pair with fresh shadows instead.
		memberSet := make(map[socialnet.UserID]bool, len(c.Members))
		for _, m := range c.Members {
			memberSet[m] = true
		}
		for _, m := range c.Members {
			intra := 0
			for _, f := range st.FriendsOf(m) {
				if memberSet[f] {
					intra++
				}
			}
			if intra > 0 {
				continue
			}
			// Pair with 1-2 shadows.
			nShadow := 1
			if r.Float64() < spec.Topology.TripletFrac {
				nShadow = 2
			}
			for s := 0; s < nShadow; s++ {
				sh := c.newShadow(r, st)
				if err := st.Friend(m, sh); err != nil {
					return err
				}
			}
		}
	case TopologySparse:
		// Mostly no intra-cohort structure; a small InternalPairFrac
		// yields the handful of coincidental friendships the paper saw
		// among Facebook-campaign likers (6 edges across 1448 likers).
		if spec.Topology.InternalPairFrac > 0 {
			nInternal := int(float64(len(c.Members)) * spec.Topology.InternalPairFrac)
			if nInternal >= 2 {
				idx, err := stats.SampleWithoutReplacement(r, len(c.Members), nInternal)
				if err != nil {
					return err
				}
				for i := 0; i+1 < len(idx); i += 2 {
					if err := st.Friend(c.Members[idx[i]], c.Members[idx[i+1]]); err != nil {
						return err
					}
				}
			}
		}
	}

	// Hubs: shared shadow friends.
	for h := 0; h < spec.Topology.HubCount; h++ {
		c.Hubs = append(c.Hubs, c.newShadow(r, st))
	}
	if len(c.Hubs) > 0 && spec.Topology.HubLinksMean > 0 {
		for _, m := range c.Members {
			k := stats.Poisson(r, spec.Topology.HubLinksMean)
			for i := 0; i < k; i++ {
				hub := c.Hubs[r.Intn(len(c.Hubs))]
				_ = st.Friend(m, hub) // duplicate edges are no-ops
			}
		}
	}

	// Organic ties.
	if spec.Topology.OrganicLinksMean > 0 && len(pop.Users) > 0 {
		for _, m := range c.Members {
			k := stats.Poisson(r, spec.Topology.OrganicLinksMean)
			for i := 0; i < k; i++ {
				_ = st.Friend(m, pop.Users[r.Intn(len(pop.Users))])
			}
		}
	}
	return nil
}

// newShadow creates a non-delivering, non-searchable account sharing the
// cohort's demographic profile.
func (c *Cohort) newShadow(r *rand.Rand, st *socialnet.Store) socialnet.UserID {
	spec := c.Spec
	country := spec.CountryMix.Sample(r)
	u := socialnet.User{
		Gender:          spec.Profile.SampleGender(r),
		Age:             spec.Profile.SampleAge(r),
		Country:         country,
		HomeTown:        socialnet.TownFor(r, country),
		CurrentTown:     socialnet.TownFor(r, country),
		FriendsPublic:   false,
		Searchable:      false,
		DeclaredFriends: 1 + r.Intn(40),
		Kind:            spec.Kind,
		Operator:        spec.Operator,
		CreatedAt:       spec.CreatedAt,
	}
	id := st.AddUser(u)
	c.Shadows = append(c.Shadows, id)
	return id
}

// MembersByCountry returns the members whose country matches, in ID
// order. Empty country returns all members.
func (c *Cohort) MembersByCountry(country string) []socialnet.UserID {
	var out []socialnet.UserID
	if country == "" {
		out = append(out, c.Members...)
	} else {
		out = append(out, c.byCountry[country]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
