package accounts

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/socialnet"
	"repro/internal/stats"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func smallWorld(t *testing.T, seed int64) (*rand.Rand, *socialnet.Store, *socialnet.Population) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	st := socialnet.NewStore()
	spec := socialnet.DefaultPopulationSpec()
	spec.NumUsers = 300
	spec.NumAmbientPages = 400
	pop, err := socialnet.GeneratePopulation(r, st, spec)
	if err != nil {
		t.Fatal(err)
	}
	return r, st, pop
}

func islandSpec(size int) CohortSpec {
	return CohortSpec{
		Name: "test-islands", Size: size,
		Kind:              socialnet.KindFarmBot,
		Operator:          "op",
		CountryMix:        stats.MustCategorical([]string{socialnet.CountryTurkey}, []float64{1}),
		Profile:           socialnet.GlobalFacebookProfile(),
		FriendsPublicFrac: 0.5, SearchableFrac: 0.1,
		Topology: TopologySpec{
			Kind:             TopologyIslands,
			InternalPairFrac: 0.2,
			TripletFrac:      0.3,
			HubCount:         20,
			HubLinksMean:     0.5,
			OrganicLinksMean: 0.1,
			DeclaredMedian:   150,
			DeclaredSigma:    0.8,
		},
		Cover: CoverSpec{
			LikeMedian: 100, LikeSigma: 0.8, MaxLikes: 500, Bursty: true,
		},
		CreatedAt: t0,
	}
}

func coreSpec(size int) CohortSpec {
	s := islandSpec(size)
	s.Name = "test-core"
	s.Kind = socialnet.KindFarmStealth
	s.Topology = TopologySpec{
		Kind: TopologyCore, CoreK: 4, CoreBeta: 0.1,
		HubCount: 10, HubLinksMean: 1,
		DeclaredMedian: 800, DeclaredSigma: 0.8,
	}
	s.Cover.Bursty = false
	return s
}

func TestBuildIslandCohort(t *testing.T) {
	r, st, pop := smallWorld(t, 1)
	c, err := Build(r, st, pop, islandSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Members) != 200 {
		t.Fatalf("members = %d", len(c.Members))
	}
	// Every member has at least one friend (island partner or shadow).
	isolated := 0
	for _, m := range c.Members {
		if st.FriendCount(m) == 0 {
			isolated++
		}
	}
	if isolated > 10 {
		t.Fatalf("%d members with no island partner at all", isolated)
	}
	if len(c.Hubs) != 20 {
		t.Fatalf("hubs = %d", len(c.Hubs))
	}
	if len(c.Shadows) == 0 {
		t.Fatal("external islands should create shadows")
	}
	// Country pinning.
	u, _ := st.User(c.Members[0])
	if u.Country != socialnet.CountryTurkey {
		t.Fatalf("country = %s", u.Country)
	}
	if u.Operator != "op" || u.Kind != socialnet.KindFarmBot {
		t.Fatalf("operator/kind = %s/%s", u.Operator, u.Kind)
	}
}

func TestBuildCoreCohortConnected(t *testing.T) {
	r, st, pop := smallWorld(t, 2)
	c, err := Build(r, st, pop, coreSpec(150))
	if err != nil {
		t.Fatal(err)
	}
	// The member-induced subgraph should be one well-connected core.
	ids := make([]int64, len(c.Members))
	for i, m := range c.Members {
		ids[i] = int64(m)
	}
	sub := st.FriendGraph().InducedSubgraph(ids)
	if f := sub.LargestComponentFraction(); f < 0.95 {
		t.Fatalf("core cohort largest component fraction = %v, want ~1", f)
	}
}

func TestIslandCohortComponentsSmall(t *testing.T) {
	r, st, pop := smallWorld(t, 3)
	c, err := Build(r, st, pop, islandSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, len(c.Members))
	for i, m := range c.Members {
		ids[i] = int64(m)
	}
	sub := st.FriendGraph().InducedSubgraph(ids)
	for size := range sub.ComponentSizes() {
		if size > 4 {
			t.Fatalf("island cohort has component of size %d", size)
		}
	}
}

func TestDeclaredFriendsCalibration(t *testing.T) {
	r, st, pop := smallWorld(t, 4)
	c, err := Build(r, st, pop, coreSpec(400))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, len(c.Members))
	for i, m := range c.Members {
		counts[i] = float64(st.DeclaredFriendCount(m))
	}
	med, err := stats.Median(counts)
	if err != nil {
		t.Fatal(err)
	}
	if med < 550 || med > 1150 {
		t.Fatalf("declared median = %v, want ≈800", med)
	}
}

func TestDeclaredBimodal(t *testing.T) {
	r, st, pop := smallWorld(t, 5)
	spec := islandSpec(600)
	spec.Topology.DeclaredMedian = 500
	spec.Topology.DeclaredMedian2 = 30
	spec.Topology.DeclaredFrac2 = 0.5
	c, err := Build(r, st, pop, spec)
	if err != nil {
		t.Fatal(err)
	}
	low, high := 0, 0
	for _, m := range c.Members {
		d := st.DeclaredFriendCount(m)
		if d < 100 {
			low++
		}
		if d >= 100 {
			high++
		}
	}
	if low < 150 || high < 150 {
		t.Fatalf("bimodal strata unbalanced: low=%d high=%d", low, high)
	}
}

func TestMembersByCountry(t *testing.T) {
	r, st, pop := smallWorld(t, 6)
	spec := islandSpec(300)
	spec.CountryMix = stats.MustCategorical(
		[]string{socialnet.CountryUSA, socialnet.CountryTurkey}, []float64{0.5, 0.5})
	c, err := Build(r, st, pop, spec)
	if err != nil {
		t.Fatal(err)
	}
	usa := c.MembersByCountry(socialnet.CountryUSA)
	tur := c.MembersByCountry(socialnet.CountryTurkey)
	all := c.MembersByCountry("")
	if len(usa)+len(tur) != len(all) || len(all) != 300 {
		t.Fatalf("partition broken: %d + %d != %d", len(usa), len(tur), len(all))
	}
	if len(usa) < 100 || len(tur) < 100 {
		t.Fatalf("mix skewed: usa=%d tur=%d", len(usa), len(tur))
	}
	for _, m := range usa {
		u, _ := st.User(m)
		if u.Country != socialnet.CountryUSA {
			t.Fatalf("wrong country for %d", m)
		}
	}
	if len(c.MembersByCountry("Atlantis")) != 0 {
		t.Fatal("unknown country should be empty")
	}
}

func TestSpecValidation(t *testing.T) {
	mutations := []func(*CohortSpec){
		func(s *CohortSpec) { s.Name = "" },
		func(s *CohortSpec) { s.Size = 0 },
		func(s *CohortSpec) { s.CountryMix = nil },
		func(s *CohortSpec) { s.Profile = nil },
		func(s *CohortSpec) { s.FriendsPublicFrac = 2 },
		func(s *CohortSpec) { s.SearchableFrac = -1 },
		func(s *CohortSpec) { s.Topology.InternalPairFrac = 2 },
		func(s *CohortSpec) { s.Topology.TripletFrac = -1 },
		func(s *CohortSpec) { s.Topology.DeclaredMedian = 0 },
		func(s *CohortSpec) { s.Topology.DeclaredSigma = 0 },
		func(s *CohortSpec) { s.Topology.DeclaredFrac2 = 0.5; s.Topology.DeclaredMedian2 = 0 },
		func(s *CohortSpec) { s.Topology.HubCount = -1 },
		func(s *CohortSpec) { s.Topology.Kind = TopologyKind(99) },
		func(s *CohortSpec) { s.Cover.LikeMedian = 0 },
		func(s *CohortSpec) { s.Cover.MaxLikes = 0 },
		func(s *CohortSpec) {
			s.Cover.Slices = []CoverSlice{{Name: "x", Frac: 0.5}}
		},
		func(s *CohortSpec) {
			s.Cover.Slices = []CoverSlice{
				{Name: "a", Pages: []socialnet.PageID{1}, Frac: 0.7},
				{Name: "b", Pages: []socialnet.PageID{2}, Frac: 0.7},
			}
		},
	}
	for i, mut := range mutations {
		spec := islandSpec(50)
		mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Fatalf("mutation %d: invalid spec accepted", i)
		}
	}
	coreBad := coreSpec(50)
	coreBad.Topology.CoreK = 3
	if err := coreBad.Validate(); err == nil {
		t.Fatal("odd core k accepted")
	}
	coreBad = coreSpec(50)
	coreBad.Topology.CoreK = 50
	if err := coreBad.Validate(); err == nil {
		t.Fatal("core k >= size accepted")
	}
}

func TestLedgerMaterializeLazy(t *testing.T) {
	r, st, pop := smallWorld(t, 7)
	led := NewLedger(pop, t0)
	c, err := Build(r, st, pop, islandSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	led.Register(c)
	if !led.Registered(c.Members[0]) {
		t.Fatal("members should be registered")
	}
	if led.Registered(pop.Users[0]) {
		t.Fatal("organic users should not be registered")
	}
	// Nothing materialized yet.
	if n := st.LikeCountOfUser(c.Members[0]); n != 0 {
		t.Fatalf("pre-materialization like count = %d", n)
	}
	subset := c.Members[:30]
	written, err := led.Materialize(r, st, subset)
	if err != nil {
		t.Fatal(err)
	}
	if written == 0 {
		t.Fatal("materialize wrote nothing")
	}
	if led.MaterializedCount() != 30 {
		t.Fatalf("materialized count = %d", led.MaterializedCount())
	}
	for _, m := range subset {
		if st.LikeCountOfUser(m) == 0 {
			t.Fatalf("member %d has no history", m)
		}
	}
	// Unmaterialized members untouched.
	if n := st.LikeCountOfUser(c.Members[50]); n != 0 {
		t.Fatalf("unrequested member has %d likes", n)
	}
	// Idempotent.
	again, err := led.Materialize(r, st, subset)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("second materialize wrote %d likes", again)
	}
}

func TestMaterializeHistoryDistinctPages(t *testing.T) {
	r, st, pop := smallWorld(t, 8)
	led := NewLedger(pop, t0)
	c, err := Build(r, st, pop, islandSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	led.Register(c)
	if _, err := led.Materialize(r, st, c.Members); err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Members[:10] {
		seen := map[socialnet.PageID]bool{}
		for _, lk := range st.LikesOfUser(m) {
			if seen[lk.Page] {
				t.Fatalf("member %d has duplicate like for page %d", m, lk.Page)
			}
			seen[lk.Page] = true
		}
	}
}

func TestMaterializeBurstyTimestamps(t *testing.T) {
	r, st, pop := smallWorld(t, 9)
	led := NewLedger(pop, t0)
	spec := islandSpec(30)
	spec.Cover.LikeMedian = 300
	spec.Cover.Bursty = true
	c, err := Build(r, st, pop, spec)
	if err != nil {
		t.Fatal(err)
	}
	led.Register(c)
	if _, err := led.Materialize(r, st, c.Members); err != nil {
		t.Fatal(err)
	}
	// Bursty accounts should show dense 2-hour windows.
	found := false
	for _, m := range c.Members {
		likes := st.LikesOfUser(m)
		if len(likes) < 80 {
			continue
		}
		counts := map[int64]int{}
		for _, lk := range likes {
			counts[lk.At.UnixNano()/int64(2*time.Hour)]++
		}
		for _, n := range counts {
			if n >= 30 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no dense 2-hour window in bursty history")
	}
}

func TestMaterializeWithSlices(t *testing.T) {
	r, st, pop := smallWorld(t, 10)
	jobs, err := MakeJobPortfolio(st, "testfarm", 50, t0)
	if err != nil {
		t.Fatal(err)
	}
	noise, err := MakePageBlock(st, "noise", "noise", 80, t0)
	if err != nil {
		t.Fatal(err)
	}
	spec := islandSpec(20)
	spec.Cover.LikeMedian = 60
	spec.Cover.MaxLikes = 120
	spec.Cover.Slices = []CoverSlice{
		{Name: "jobs", Pages: jobs, Frac: 0.5},
		{Name: "noise", Pages: noise, Frac: 0.5},
	}
	c, err := Build(r, st, pop, spec)
	if err != nil {
		t.Fatal(err)
	}
	led := NewLedger(pop, t0)
	led.Register(c)
	if _, err := led.Materialize(r, st, c.Members); err != nil {
		t.Fatal(err)
	}
	jobSet := map[socialnet.PageID]bool{}
	for _, p := range jobs {
		jobSet[p] = true
	}
	noiseSet := map[socialnet.PageID]bool{}
	for _, p := range noise {
		noiseSet[p] = true
	}
	for _, m := range c.Members {
		nJobs, nNoise, nOther := 0, 0, 0
		for _, lk := range st.LikesOfUser(m) {
			switch {
			case jobSet[lk.Page]:
				nJobs++
			case noiseSet[lk.Page]:
				nNoise++
			default:
				nOther++
			}
		}
		if nJobs == 0 || nNoise == 0 {
			t.Fatalf("member %d missing slice likes: jobs=%d noise=%d", m, nJobs, nNoise)
		}
		if nOther != 0 {
			t.Fatalf("member %d has %d likes outside slices (fractions sum to 1)", m, nOther)
		}
	}
}

func TestMakePageBlock(t *testing.T) {
	st := socialnet.NewStore()
	ids, err := MakePageBlock(st, "blk", "cat", 10, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 || st.NumPages() != 10 {
		t.Fatalf("block size %d, pages %d", len(ids), st.NumPages())
	}
	p, _ := st.Page(ids[0])
	if p.Honeypot {
		t.Fatal("block pages must not be honeypots")
	}
	if _, err := MakePageBlock(st, "bad", "cat", 0, t0); err == nil {
		t.Fatal("size 0 should error")
	}
}

func TestHistoryExcludesHoneypots(t *testing.T) {
	st := socialnet.NewStore()
	u := st.AddUser(socialnet.User{Country: "USA"})
	hp, err := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	err = st.AddHistory(u, []socialnet.Like{{Page: hp, At: t0}})
	if err == nil {
		t.Fatal("history with honeypot page should error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	run := func() []int {
		r, st, pop := smallWorld(t, 42)
		c, err := Build(r, st, pop, islandSpec(120))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, len(c.Members))
		for i, m := range c.Members {
			out[i] = st.DeclaredFriendCount(m)*100 + st.FriendCount(m)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cohort build not deterministic at member %d", i)
		}
	}
}
