package analysis

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/parallel"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// Aggregator is a streaming §4 analysis: it observes each relevant
// like event of the store's journal exactly once and assembles its
// artifact in Finalize. The study engine fans all aggregators out over
// ONE filtered extraction of the journal instead of running one full
// store scan per analysis.
//
// Events arrive in shard-canonical order: journal shards in index
// order, events canonically (time, user, page) sorted within each
// shard's span. That order is a pure function of the event set and the
// shard count, so it is reproducible — but it is not globally
// time-sorted, and the shard count is a deployment knob. Determinism
// rules for implementations (DESIGN.md §8): Observe must therefore be
// an ORDER-INSENSITIVE fold (counts, sets, sums) plus read-only store
// lookups — no randomness, no iteration over Go maps into ordered
// output, no dependence on wall time; an analysis that needs time
// order must buffer and sort its own (filtered, small) series, as
// WindowAggregator does — and Finalize must emit rows in campaign
// (input-slice) order. Under those rules an aggregator's output is
// bit-identical for every worker count and store shard count
// (TestAggregatorsDeterministicAcrossShardCounts).
//
// Observe runs on the hot path — millions of events per run — so the
// concrete aggregators key their membership tests off dense arrays
// indexed by the (densely assigned) user and page IDs, not maps.
type Aggregator interface {
	// Observe folds one journal event into the aggregator's state.
	// Implementations must not retain the event's memory beyond the
	// call except by value.
	Observe(ev socialnet.LikeEvent)
	// Finalize completes the fold and reports the first error captured
	// during the pass, if any. Results are exposed by concrete types.
	Finalize() error
}

// Consume feeds every event to the aggregator in order and finalizes
// it — the single-aggregator driver; the study engine runs one Consume
// per aggregator over a shared filtered extraction.
func Consume(events []socialnet.LikeEvent, agg Aggregator) error {
	for _, ev := range events {
		agg.Observe(ev)
	}
	return agg.Finalize()
}

// RunPass drives every aggregator over the study-relevant journal
// events in one pass. Two execution shapes, chosen by pool width and
// byte-identical in output (aggregators are order-insensitive folds,
// so the event order between the shapes may differ):
//
//   - Serial pool: a single fused journal scan — no filtered slice is
//     ever materialized; each relevant event is handed to all
//     aggregators in turn. This minimizes total work (one traversal,
//     zero allocation), which is what a one-core deployment needs.
//   - Parallel pool: the relevant events are extracted once in
//     shard-canonical order (per-shard filter + sort on the pool) and
//     the aggregators then consume the shared slice concurrently, one
//     task per aggregator.
func RunPass(j *socialnet.Journal, campaigns []Campaign, baseline []socialnet.UserID, workers int, aggs ...Aggregator) error {
	keep := relevantFilter(campaigns, baseline)
	if parallel.Workers(workers) == 1 {
		j.Scan(func(ev socialnet.LikeEvent) {
			if !keep(ev) {
				return
			}
			for _, agg := range aggs {
				agg.Observe(ev)
			}
		})
		for _, agg := range aggs {
			if err := agg.Finalize(); err != nil {
				return err
			}
		}
		return nil
	}
	events := j.EventsWhere(workers, keep)
	return parallel.ForEach(workers, len(aggs), func(i int) error {
		return Consume(events, aggs[i])
	})
}

// RelevantEvents extracts, in shard-canonical order, the subsequence
// of the journal the §4 aggregators can possibly act on: events by a
// tracked user (an observed liker of an active campaign, or a baseline
// sample member) or on a campaign page. The journal also carries the
// ambient histories of the entire organic population — far more events
// than the study's likers produce — so the selection runs as a
// per-shard filter (two dense-array membership tests per event) and
// only the survivors are sorted, per shard, on the pool. This is what
// lets six aggregators consume the stream for less than one batch
// scan. The filter is a transparent superset: aggregators keep their
// own (now cheap) membership logic, so feeding them the raw canonical
// stream produces identical output.
func RelevantEvents(j *socialnet.Journal, campaigns []Campaign, baseline []socialnet.UserID, workers int) []socialnet.LikeEvent {
	return j.EventsWhere(workers, relevantFilter(campaigns, baseline))
}

// relevantFilter builds the dense-array predicate behind RelevantEvents
// and RunPass: keep events by tracked users or on campaign pages. One
// definition, so the materialized and fused paths can never drift.
func relevantFilter(campaigns []Campaign, baseline []socialnet.UserID) func(socialnet.LikeEvent) bool {
	users := denseUserSet(campaigns, baseline)
	pages := densePageIndex(campaigns, false)
	return func(ev socialnet.LikeEvent) bool {
		return (int(ev.User) < len(users) && users[ev.User]) ||
			(int(ev.Page) < len(pages) && pages[ev.Page] >= 0)
	}
}

// densePageIndex maps page ID to campaign index as a flat array (-1 =
// not a campaign page), sized by the largest campaign page ID. Events
// referencing pages beyond the array are by definition not campaign
// pages — callers bounds-check with len.
func densePageIndex(campaigns []Campaign, activeOnly bool) []int32 {
	var maxPage socialnet.PageID
	for _, c := range campaigns {
		if c.Page > maxPage {
			maxPage = c.Page
		}
	}
	idx := make([]int32, maxPage+1)
	for i := range idx {
		idx[i] = -1
	}
	for i, c := range campaigns {
		if activeOnly && !c.Active {
			continue
		}
		idx[c.Page] = int32(i)
	}
	return idx
}

// denseLikerSets returns per-campaign observed-liker membership arrays
// (nil for inactive campaigns), indexed by user ID. The analyses
// attribute a like to a campaign only when the monitor observed the
// liker — the observables the paper's authors had — so aggregators
// filter page events through these sets rather than trusting raw page
// traffic.
func denseLikerSets(campaigns []Campaign) [][]bool {
	var maxUser socialnet.UserID
	for _, c := range campaigns {
		for _, u := range c.Likers {
			if u > maxUser {
				maxUser = u
			}
		}
	}
	out := make([][]bool, len(campaigns))
	for i, c := range campaigns {
		if !c.Active {
			continue
		}
		set := make([]bool, maxUser+1)
		for _, u := range c.Likers {
			set[u] = true
		}
		out[i] = set
	}
	return out
}

// denseUserSet returns the union of active campaigns' likers and the
// baseline sample as a flat membership array indexed by user ID.
func denseUserSet(campaigns []Campaign, baseline []socialnet.UserID) []bool {
	var maxUser socialnet.UserID
	for _, c := range campaigns {
		for _, u := range c.Likers {
			if u > maxUser {
				maxUser = u
			}
		}
	}
	for _, u := range baseline {
		if u > maxUser {
			maxUser = u
		}
	}
	set := make([]bool, maxUser+1)
	for _, c := range campaigns {
		if !c.Active {
			continue
		}
		for _, u := range c.Likers {
			set[u] = true
		}
	}
	for _, u := range baseline {
		set[u] = true
	}
	return set
}

// memberOf reports whether user u is in the dense set.
func memberOf(set []bool, u socialnet.UserID) bool {
	return int(u) < len(set) && set[u]
}

// campaignOf resolves a page to its campaign index, or -1.
func campaignOf(idx []int32, p socialnet.PageID) int32 {
	if int(p) >= len(idx) {
		return -1
	}
	return idx[p]
}

// GeoAggregator streams Figure 1 (liker geolocation per campaign).
type GeoAggregator struct {
	st        *socialnet.Store
	campaigns []Campaign
	pageIdx   []int32
	likerOf   [][]bool
	known     map[string]bool
	counts    []map[string]float64
	totals    []int
	rows      []GeoRow
	err       error
}

// NewGeoAggregator builds the Figure 1 aggregator.
func NewGeoAggregator(st *socialnet.Store, campaigns []Campaign) *GeoAggregator {
	g := &GeoAggregator{
		st:        st,
		campaigns: campaigns,
		pageIdx:   densePageIndex(campaigns, true),
		likerOf:   denseLikerSets(campaigns),
		known:     knownCountries(),
		counts:    make([]map[string]float64, len(campaigns)),
		totals:    make([]int, len(campaigns)),
	}
	for i, c := range campaigns {
		if c.Active {
			g.counts[i] = make(map[string]float64)
		}
	}
	return g
}

// Observe implements Aggregator.
func (g *GeoAggregator) Observe(ev socialnet.LikeEvent) {
	i := campaignOf(g.pageIdx, ev.Page)
	if i < 0 || !memberOf(g.likerOf[i], ev.User) || g.err != nil {
		return
	}
	u, err := g.st.User(ev.User)
	if err != nil {
		g.err = fmt.Errorf("analysis: geolocation: %w", err)
		return
	}
	label := u.Country
	if !g.known[label] {
		label = socialnet.CountryOther
	}
	g.counts[i][label]++
	g.totals[i]++
}

// Finalize implements Aggregator.
func (g *GeoAggregator) Finalize() error {
	if g.err != nil {
		return g.err
	}
	for i, c := range g.campaigns {
		if !c.Active {
			continue
		}
		g.rows = append(g.rows, geoRowFrom(c.ID, g.counts[i], g.totals[i]))
	}
	return nil
}

// Rows returns the Figure 1 rows (valid after Finalize).
func (g *GeoAggregator) Rows() []GeoRow { return g.rows }

// DemoAggregator streams Table 2 (gender/age demographics + KL).
type DemoAggregator struct {
	st        *socialnet.Store
	campaigns []Campaign
	pageIdx   []int32
	likerOf   [][]bool
	tallies   []demoTally
	rows      []DemoRow
	err       error
}

// NewDemoAggregator builds the Table 2 aggregator.
func NewDemoAggregator(st *socialnet.Store, campaigns []Campaign) *DemoAggregator {
	return &DemoAggregator{
		st:        st,
		campaigns: campaigns,
		pageIdx:   densePageIndex(campaigns, true),
		likerOf:   denseLikerSets(campaigns),
		tallies:   make([]demoTally, len(campaigns)),
	}
}

// Observe implements Aggregator.
func (d *DemoAggregator) Observe(ev socialnet.LikeEvent) {
	i := campaignOf(d.pageIdx, ev.Page)
	if i < 0 || !memberOf(d.likerOf[i], ev.User) || d.err != nil {
		return
	}
	u, err := d.st.User(ev.User)
	if err != nil {
		d.err = fmt.Errorf("analysis: demographics: %w", err)
		return
	}
	d.tallies[i].observe(u)
}

// Finalize implements Aggregator.
func (d *DemoAggregator) Finalize() error {
	if d.err != nil {
		return d.err
	}
	for i, c := range d.campaigns {
		if !c.Active {
			continue
		}
		row, err := demoRowFrom(c.ID, d.tallies[i])
		if err != nil {
			return err
		}
		d.rows = append(d.rows, row)
	}
	return nil
}

// Rows returns the Table 2 rows (valid after Finalize).
func (d *DemoAggregator) Rows() []DemoRow { return d.rows }

// WindowAggregator streams the 2-hour window analysis (Figure 2 at
// sub-day granularity) for every campaign, active or not — inactive
// pages simply contribute empty streams, matching the batch scan.
type WindowAggregator struct {
	campaigns []Campaign
	pageIdx   []int32
	times     [][]time.Time
	stats     []WindowStats
}

// NewWindowAggregator builds the window-analysis aggregator.
func NewWindowAggregator(campaigns []Campaign) *WindowAggregator {
	return &WindowAggregator{
		campaigns: campaigns,
		pageIdx:   densePageIndex(campaigns, false),
		times:     make([][]time.Time, len(campaigns)),
	}
}

// Observe implements Aggregator.
func (w *WindowAggregator) Observe(ev socialnet.LikeEvent) {
	if i := campaignOf(w.pageIdx, ev.Page); i >= 0 {
		w.times[i] = append(w.times[i], ev.At)
	}
}

// Finalize implements Aggregator. The window scans need time-sorted
// series, and the stream is only shard-canonical, so each campaign's
// (small) series is sorted here — the one place in the streaming layer
// that pays for order, at per-campaign rather than journal scale.
func (w *WindowAggregator) Finalize() error {
	w.stats = make([]WindowStats, len(w.campaigns))
	for i, c := range w.campaigns {
		ts := w.times[i]
		sort.Slice(ts, func(a, b int) bool { return ts[a].Before(ts[b]) })
		ws, err := WindowAnalysis(c.ID, ts)
		if err != nil {
			return err
		}
		w.stats[i] = ws
	}
	return nil
}

// Stats returns one WindowStats per campaign, in campaign order (valid
// after Finalize).
func (w *WindowAggregator) Stats() []WindowStats { return w.stats }

// PageLikeCDFAggregator streams Figure 4: the distribution of total
// page-like counts per liker for every active campaign, plus the
// organic baseline sample labelled "Facebook". A user's count is their
// total journal presence — campaign likes and imported history alike —
// exactly what the profile crawl of §4.4 measured.
type PageLikeCDFAggregator struct {
	campaigns []Campaign
	baseline  []socialnet.UserID
	tracked   []bool
	counts    []int32
	rows      []PageLikeCDF
}

// NewPageLikeCDFAggregator builds the Figure 4 aggregator.
func NewPageLikeCDFAggregator(campaigns []Campaign, baseline []socialnet.UserID) *PageLikeCDFAggregator {
	tracked := denseUserSet(campaigns, baseline)
	return &PageLikeCDFAggregator{
		campaigns: campaigns,
		baseline:  baseline,
		tracked:   tracked,
		counts:    make([]int32, len(tracked)),
	}
}

// Observe implements Aggregator.
func (a *PageLikeCDFAggregator) Observe(ev socialnet.LikeEvent) {
	if memberOf(a.tracked, ev.User) {
		a.counts[ev.User]++
	}
}

// Finalize implements Aggregator.
func (a *PageLikeCDFAggregator) Finalize() error {
	build := func(id string, users []socialnet.UserID) error {
		if len(users) == 0 {
			return nil
		}
		counts := make([]float64, len(users))
		for i, u := range users {
			counts[i] = float64(a.counts[u])
		}
		row, err := newPageLikeCDF(id, counts)
		if err != nil {
			return err
		}
		a.rows = append(a.rows, row)
		return nil
	}
	for _, c := range a.campaigns {
		if !c.Active {
			continue
		}
		if err := build(c.ID, c.Likers); err != nil {
			return err
		}
	}
	return build("Facebook", a.baseline)
}

// Rows returns the Figure 4 rows (valid after Finalize).
func (a *PageLikeCDFAggregator) Rows() []PageLikeCDF { return a.rows }

// JaccardAggregator streams Figure 5: pairwise similarity of campaigns'
// page-like unions and liker sets. The page union of a campaign is
// every page its observed likers like — assembled here from each
// liker's events as they stream by, into dense per-campaign page
// bitmaps, instead of copying each liker's full history out of the
// store and folding maps.
type JaccardAggregator struct {
	campaigns []Campaign
	likerOf   [][]bool
	// anyLiker is the union of likerOf: the early-out that spares
	// baseline-only users the per-campaign probes on the hot path.
	anyLiker []bool
	// pageSeen[i][p] marks page p liked by a member of campaign i
	// (excluding i's own honeypot page). Grown on demand: page IDs are
	// dense but the universe isn't known up front.
	pageSeen [][]bool
	pageSim  [][]float64
	userSim  [][]float64
}

// NewJaccardAggregator builds the Figure 5 aggregator.
func NewJaccardAggregator(campaigns []Campaign) *JaccardAggregator {
	return &JaccardAggregator{
		campaigns: campaigns,
		likerOf:   denseLikerSets(campaigns),
		anyLiker:  denseUserSet(campaigns, nil),
		pageSeen:  make([][]bool, len(campaigns)),
	}
}

// Observe implements Aggregator.
func (j *JaccardAggregator) Observe(ev socialnet.LikeEvent) {
	if !memberOf(j.anyLiker, ev.User) {
		return
	}
	for i := range j.campaigns {
		if j.likerOf[i] == nil || !memberOf(j.likerOf[i], ev.User) {
			continue
		}
		if ev.Page == j.campaigns[i].Page {
			continue // exclude the campaign's own honeypot page
		}
		seen := j.pageSeen[i]
		if int(ev.Page) >= len(seen) {
			grown := make([]bool, int(ev.Page)+1)
			copy(grown, seen)
			seen = grown
			j.pageSeen[i] = seen
		}
		seen[ev.Page] = true
	}
}

// Finalize implements Aggregator.
func (j *JaccardAggregator) Finalize() error {
	n := len(j.campaigns)
	sizes := make([]int, n)
	for i, seen := range j.pageSeen {
		for _, ok := range seen {
			if ok {
				sizes[i]++
			}
		}
	}
	userSets := make([]map[socialnet.UserID]struct{}, n)
	for i, c := range j.campaigns {
		userSets[i] = make(map[socialnet.UserID]struct{})
		if !c.Active {
			continue
		}
		for _, u := range c.Likers {
			userSets[i][u] = struct{}{}
		}
	}
	j.pageSim, j.userSim = similarityMatrices(j.campaigns,
		func(a, b int) float64 { return 100 * bitmapJaccard(j.pageSeen[a], j.pageSeen[b], sizes[a], sizes[b]) },
		func(a, b int) float64 { return 100 * stats.Jaccard(userSets[a], userSets[b]) })
	return nil
}

// bitmapJaccard is the Jaccard similarity of two dense membership
// bitmaps with precomputed set sizes — the Figure 5 page-union math
// shared between the journal aggregator and the crawl-side aggregator,
// so the two engines cannot diverge in arithmetic.
func bitmapJaccard(a, b []bool, na, nb int) float64 {
	if na == 0 && nb == 0 {
		return 0
	}
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	inter := 0
	for p := 0; p < m; p++ {
		if a[p] && b[p] {
			inter++
		}
	}
	return float64(inter) / float64(na+nb-inter)
}

// Matrices returns the Figure 5 page and liker similarity matrices
// (valid after Finalize).
func (j *JaccardAggregator) Matrices() (pageSim, userSim [][]float64) {
	return j.pageSim, j.userSim
}

// RemovedLikesAggregator streams the §5 follow-up observable: how many
// of each honeypot page's likes the termination sweep removed. It must
// run after the sweep, since it reads account status per page event.
type RemovedLikesAggregator struct {
	st        *socialnet.Store
	campaigns []Campaign
	pageIdx   []int32
	total     []int
	active    []int
	removed   map[string]int
	err       error
}

// NewRemovedLikesAggregator builds the removed-likes aggregator.
func NewRemovedLikesAggregator(st *socialnet.Store, campaigns []Campaign) *RemovedLikesAggregator {
	return &RemovedLikesAggregator{
		st:        st,
		campaigns: campaigns,
		pageIdx:   densePageIndex(campaigns, false),
		total:     make([]int, len(campaigns)),
		active:    make([]int, len(campaigns)),
	}
}

// Observe implements Aggregator.
func (r *RemovedLikesAggregator) Observe(ev socialnet.LikeEvent) {
	i := campaignOf(r.pageIdx, ev.Page)
	if i < 0 || r.err != nil {
		return
	}
	r.total[i]++
	u, err := r.st.User(ev.User)
	if err != nil {
		r.err = fmt.Errorf("analysis: removed likes: %w", err)
		return
	}
	if u.Status == socialnet.StatusActive {
		r.active[i]++
	}
}

// Finalize implements Aggregator.
func (r *RemovedLikesAggregator) Finalize() error {
	if r.err != nil {
		return r.err
	}
	r.removed = make(map[string]int, len(r.campaigns))
	for i, c := range r.campaigns {
		r.removed[c.ID] = r.total[i] - r.active[i]
	}
	return nil
}

// Removed returns likes lost to the sweep per campaign ID, including
// zero entries for inactive campaigns (valid after Finalize).
func (r *RemovedLikesAggregator) Removed() map[string]int { return r.removed }
