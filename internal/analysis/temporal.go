package analysis

import (
	"fmt"
	"time"
)

// TemporalSeries is one campaign's cumulative like count by day offset
// (Figure 2). Values[d] is the cumulative count at day d (0..Days).
type TemporalSeries struct {
	CampaignID string
	Values     []int
}

// BurstStats summarizes how bursty a delivery series is: the largest
// single-day jump as a fraction of the total, and the number of days in
// which 90% of the volume arrived. The §4.2 dichotomy — SF/AL/MS dump
// likes inside two-hour windows while BL and the Facebook ads trickle —
// shows up as MaxDayJumpFrac near 1 vs spread across many days.
type BurstStats struct {
	CampaignID     string
	Total          int
	MaxDayJumpFrac float64
	DaysTo90Pct    int
}

// Burstiness computes BurstStats from a temporal series.
func Burstiness(s TemporalSeries) BurstStats {
	out := BurstStats{CampaignID: s.CampaignID}
	if len(s.Values) == 0 {
		return out
	}
	total := s.Values[len(s.Values)-1]
	out.Total = total
	if total == 0 {
		return out
	}
	maxJump := 0
	for d := 1; d < len(s.Values); d++ {
		if j := s.Values[d] - s.Values[d-1]; j > maxJump {
			maxJump = j
		}
	}
	// Day 0 may already carry likes (burst within the first poll gap).
	if s.Values[0] > maxJump {
		maxJump = s.Values[0]
	}
	out.MaxDayJumpFrac = float64(maxJump) / float64(total)
	threshold := int(0.9 * float64(total))
	for d := 0; d < len(s.Values); d++ {
		if s.Values[d] >= threshold {
			out.DaysTo90Pct = d
			break
		}
	}
	return out
}

// InterLikeGaps returns the gaps between consecutive like timestamps of
// a campaign's like stream — the raw material for window-level burst
// analysis beyond daily resolution.
func InterLikeGaps(times []time.Time) ([]time.Duration, error) {
	if len(times) < 2 {
		return nil, nil
	}
	for i := 1; i < len(times); i++ {
		if times[i].Before(times[i-1]) {
			return nil, fmt.Errorf("analysis: like times not sorted at %d", i)
		}
	}
	out := make([]time.Duration, len(times)-1)
	for i := 1; i < len(times); i++ {
		out[i-1] = times[i].Sub(times[i-1])
	}
	return out, nil
}

// WindowStats summarizes a campaign's like stream at sub-day
// granularity: the §4.2 observation that SF/AL/MS delivered their likes
// "within a short period of time of two hours" is a claim about these
// windows, not about daily buckets.
type WindowStats struct {
	CampaignID string
	Total      int
	// MaxIn2h is the largest number of likes in any 2-hour window, and
	// MaxFrac2h its share of the total.
	MaxIn2h   int
	MaxFrac2h float64
	// ActiveWindows is how many distinct (aligned) 2-hour windows saw
	// at least one like — bursts concentrate everything into a handful.
	ActiveWindows int
}

// WindowAnalysis computes WindowStats from a campaign's sorted like
// times.
func WindowAnalysis(campaignID string, times []time.Time) (WindowStats, error) {
	out := WindowStats{CampaignID: campaignID, Total: len(times)}
	if len(times) == 0 {
		return out, nil
	}
	maxIn, err := MaxWithinWindow(times, 2*time.Hour)
	if err != nil {
		return out, err
	}
	out.MaxIn2h = maxIn
	out.MaxFrac2h = float64(maxIn) / float64(len(times))
	windows := make(map[int64]struct{})
	for _, tm := range times {
		windows[tm.UnixNano()/int64(2*time.Hour)] = struct{}{}
	}
	out.ActiveWindows = len(windows)
	return out, nil
}

// MaxWithinWindow returns the largest number of likes falling within any
// sliding window of the given width (the paper: "likes were garnered
// within a short period of time of two hours").
func MaxWithinWindow(times []time.Time, window time.Duration) (int, error) {
	if window <= 0 {
		return 0, fmt.Errorf("analysis: non-positive window %s", window)
	}
	if len(times) == 0 {
		return 0, nil
	}
	for i := 1; i < len(times); i++ {
		if times[i].Before(times[i-1]) {
			return 0, fmt.Errorf("analysis: like times not sorted at %d", i)
		}
	}
	best := 1
	lo := 0
	for hi := range times {
		for times[hi].Sub(times[lo]) > window {
			lo++
		}
		if n := hi - lo + 1; n > best {
			best = n
		}
	}
	return best, nil
}
