package analysis

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/socialnet"
)

var st0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

// buildStreamWorld fills a store with a deterministic multi-campaign
// world: demographically varied likers, two honeypot campaigns plus an
// inactive one, ambient history likes, and a few terminated accounts.
// Returns the campaigns (monitor-observed likers = page likers) and the
// baseline sample.
func buildStreamWorld(t *testing.T, st *socialnet.Store) ([]Campaign, []socialnet.UserID) {
	t.Helper()
	r := rand.New(rand.NewSource(77))
	countries := []string{socialnet.CountryUSA, socialnet.CountryIndia, "Nowhere", socialnet.CountryTurkey}

	var users []socialnet.UserID
	for i := 0; i < 120; i++ {
		users = append(users, st.AddUser(socialnet.User{
			Gender:     socialnet.Gender(i % 3),
			Age:        socialnet.AgeBracket(i % 6),
			Country:    countries[i%len(countries)],
			Searchable: true,
		}))
	}
	var ambient []socialnet.PageID
	for i := 0; i < 30; i++ {
		p, err := st.AddPage(socialnet.Page{Name: "ambient", Category: "ambient"})
		if err != nil {
			t.Fatal(err)
		}
		ambient = append(ambient, p)
	}
	pageA, _ := st.AddPage(socialnet.Page{Name: "hp-A", Honeypot: true})
	pageB, _ := st.AddPage(socialnet.Page{Name: "hp-B", Honeypot: true})
	pageC, _ := st.AddPage(socialnet.Page{Name: "hp-C", Honeypot: true})

	// Campaign A: first 60 users; campaign B: users 40..100 (overlap
	// with A drives the Jaccard liker similarity).
	var likersA, likersB []socialnet.UserID
	for i, u := range users[:60] {
		at := st0.Add(time.Duration(i%13) * time.Hour)
		if err := st.AddLike(u, pageA, at); err != nil {
			t.Fatal(err)
		}
		likersA = append(likersA, u)
	}
	for i, u := range users[40:100] {
		at := st0.Add(time.Duration(24+i%7) * time.Hour)
		if err := st.AddLike(u, pageB, at); err != nil {
			t.Fatal(err)
		}
		likersB = append(likersB, u)
	}
	// Ambient cover histories for every user (distinct pages per user).
	for _, u := range users {
		n := 1 + r.Intn(5)
		var hist []socialnet.Like
		perm := r.Perm(len(ambient))[:n]
		for k, pi := range perm {
			hist = append(hist, socialnet.Like{
				Page: ambient[pi],
				At:   st0.AddDate(0, 0, -30).Add(time.Duration(k) * time.Hour),
			})
		}
		if err := st.AddHistory(u, hist); err != nil {
			t.Fatal(err)
		}
	}
	// Terminations feed the removed-likes analysis.
	for _, u := range users[:10] {
		if err := st.Terminate(u); err != nil {
			t.Fatal(err)
		}
	}

	campaigns := []Campaign{
		{ID: "A", Provider: "ProvA", Page: pageA, Likers: likersA, Active: true},
		{ID: "B", Provider: "ProvB", Page: pageB, Likers: likersB, Active: true},
		{ID: "C", Provider: "ProvC", Page: pageC, Active: false},
	}
	// users[110:] are bystanders: ambient histories only, tracked by no
	// campaign and absent from the baseline — the filterable tail.
	baseline := users[100:110]
	return campaigns, baseline
}

// runStreamPass drives every aggregator over the store's canonical
// journal and returns their outputs bundled for comparison.
type streamOutputs struct {
	Geo     []GeoRow
	Demo    []DemoRow
	Windows []WindowStats
	CDFs    []PageLikeCDF
	PageSim [][]float64
	UserSim [][]float64
	Removed map[string]int
}

func runStreamPass(t *testing.T, st *socialnet.Store, campaigns []Campaign, baseline []socialnet.UserID, workers int) streamOutputs {
	t.Helper()
	geo := NewGeoAggregator(st, campaigns)
	demo := NewDemoAggregator(st, campaigns)
	win := NewWindowAggregator(campaigns)
	cdf := NewPageLikeCDFAggregator(campaigns, baseline)
	jac := NewJaccardAggregator(campaigns)
	rem := NewRemovedLikesAggregator(st, campaigns)
	// workers=1 exercises the fused journal scan, >1 the materialized
	// fan-out — both must produce identical output.
	if err := RunPass(st.Journal(), campaigns, baseline, workers, geo, demo, win, cdf, jac, rem); err != nil {
		t.Fatal(err)
	}
	pageSim, userSim := jac.Matrices()
	return streamOutputs{
		Geo: geo.Rows(), Demo: demo.Rows(), Windows: win.Stats(),
		CDFs: cdf.Rows(), PageSim: pageSim, UserSim: userSim,
		Removed: rem.Removed(),
	}
}

// TestAggregatorsMatchBatchAnalyses is the one-pass engine's anchor:
// every streaming aggregator must reproduce its batch-scan counterpart
// exactly on the same store.
func TestAggregatorsMatchBatchAnalyses(t *testing.T) {
	st := socialnet.NewStore()
	campaigns, baseline := buildStreamWorld(t, st)
	got := runStreamPass(t, st, campaigns, baseline, 4)

	wantGeo, err := LocationBreakdown(st, campaigns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Geo, wantGeo) {
		t.Fatalf("Geo diverges:\n got %+v\nwant %+v", got.Geo, wantGeo)
	}
	wantDemo, err := Demographics(st, campaigns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Demo, wantDemo) {
		t.Fatalf("Demo diverges:\n got %+v\nwant %+v", got.Demo, wantDemo)
	}
	for i, c := range campaigns {
		likes := st.LikesOfPage(c.Page)
		times := make([]time.Time, len(likes))
		for j, lk := range likes {
			times[j] = lk.At
		}
		want, err := WindowAnalysis(c.ID, times)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Windows[i], want) {
			t.Fatalf("Windows[%d] = %+v, want %+v", i, got.Windows[i], want)
		}
	}
	wantCDFs, err := PageLikeCDFs(st, campaigns, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.CDFs, wantCDFs) {
		t.Fatalf("CDFs diverge:\n got %+v\nwant %+v", got.CDFs, wantCDFs)
	}
	wantPage, wantUser, err := JaccardMatrices(st, campaigns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.PageSim, wantPage) || !reflect.DeepEqual(got.UserSim, wantUser) {
		t.Fatal("Jaccard matrices diverge")
	}
	for _, c := range campaigns {
		want := st.LikeCountOfPage(c.Page) - st.ActiveLikeCountOfPage(c.Page)
		if got.Removed[c.ID] != want {
			t.Fatalf("Removed[%s] = %d, want %d", c.ID, got.Removed[c.ID], want)
		}
	}
	if got.Removed["A"] == 0 {
		t.Fatal("terminations should have removed likes from campaign A")
	}
}

// TestAggregatorsDeterministicAcrossShardCounts pins the streaming
// engine's determinism contract: identical worlds stored under
// different shard counts, consumed with different worker counts, must
// produce identical aggregator output — the canonical event order is a
// property of the events, not of the sharding.
func TestAggregatorsDeterministicAcrossShardCounts(t *testing.T) {
	type run struct {
		out       streamOutputs
		shards    int
		workers   int
		campaigns []Campaign
	}
	var runs []run
	for _, shards := range []int{1, 4, 128} {
		for _, workers := range []int{1, 8} {
			st := socialnet.NewShardedStore(shards)
			campaigns, baseline := buildStreamWorld(t, st)
			runs = append(runs, run{
				out:     runStreamPass(t, st, campaigns, baseline, workers),
				shards:  shards,
				workers: workers,
			})
		}
	}
	for _, r := range runs[1:] {
		if !reflect.DeepEqual(r.out, runs[0].out) {
			t.Fatalf("aggregator output diverges at shards=%d workers=%d", r.shards, r.workers)
		}
	}
}

// TestRelevantEventsTransparent: the pre-filter is a pure superset
// optimization — aggregators produce identical output whether they
// consume the raw canonical stream or the filtered subsequence.
func TestRelevantEventsTransparent(t *testing.T) {
	st := socialnet.NewStore()
	campaigns, baseline := buildStreamWorld(t, st)
	raw := st.Journal().EventsCanonical(1)
	filtered := RelevantEvents(st.Journal(), campaigns, baseline, 1)
	if len(filtered) >= len(raw) {
		t.Fatalf("filter dropped nothing: %d of %d events", len(filtered), len(raw))
	}
	// Filtered output (runStreamPass) must match a pass over the raw
	// stream, aggregator by aggregator.
	want := runStreamPass(t, st, campaigns, baseline, 1)
	geo := NewGeoAggregator(st, campaigns)
	cdf := NewPageLikeCDFAggregator(campaigns, baseline)
	jac := NewJaccardAggregator(campaigns)
	for _, agg := range []Aggregator{geo, cdf, jac} {
		if err := Consume(raw, agg); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(geo.Rows(), want.Geo) {
		t.Fatal("Geo differs between raw and filtered streams")
	}
	if !reflect.DeepEqual(cdf.Rows(), want.CDFs) {
		t.Fatal("CDFs differ between raw and filtered streams")
	}
	pageSim, userSim := jac.Matrices()
	if !reflect.DeepEqual(pageSim, want.PageSim) || !reflect.DeepEqual(userSim, want.UserSim) {
		t.Fatal("Jaccard differs between raw and filtered streams")
	}
}

// TestGeoAggregatorIgnoresUnobservedLikers: page traffic from users the
// monitor never attributed to the campaign must not leak into the
// analyses — the aggregators honor the observed-liker sets.
func TestGeoAggregatorIgnoresUnobservedLikers(t *testing.T) {
	st := socialnet.NewStore()
	u1 := st.AddUser(socialnet.User{Country: socialnet.CountryUSA})
	u2 := st.AddUser(socialnet.User{Country: socialnet.CountryIndia})
	page, _ := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	if err := st.AddLike(u1, page, st0); err != nil {
		t.Fatal(err)
	}
	if err := st.AddLike(u2, page, st0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Only u1 was observed.
	campaigns := []Campaign{{ID: "A", Page: page, Likers: []socialnet.UserID{u1}, Active: true}}
	geo := NewGeoAggregator(st, campaigns)
	if err := Consume(st.Journal().EventsCanonical(1), geo); err != nil {
		t.Fatal(err)
	}
	rows := geo.Rows()
	if len(rows) != 1 || rows[0].Total != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Percent[socialnet.CountryUSA] != 100 {
		t.Fatalf("percent = %+v", rows[0].Percent)
	}
}
