package analysis

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/socialnet"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

// buildWorld creates a store with two campaigns: "A" (provider P1) whose
// likers are Indian young males, and "B" (provider P2) whose likers
// mirror the global distribution.
func buildWorld(t *testing.T) (*socialnet.Store, []Campaign) {
	t.Helper()
	st := socialnet.NewStore()
	pa, _ := st.AddPage(socialnet.Page{Name: "A", Honeypot: true})
	pb, _ := st.AddPage(socialnet.Page{Name: "B", Honeypot: true})
	r := rand.New(rand.NewSource(1))

	var aLikers, bLikers []socialnet.UserID
	young := socialnet.YoungMaleProfile(0.07)
	global := socialnet.GlobalFacebookProfile()
	for i := 0; i < 200; i++ {
		u := st.AddUser(socialnet.User{
			Gender: young.SampleGender(r), Age: young.SampleAge(r),
			Country: socialnet.CountryIndia, FriendsPublic: i%5 == 0,
			DeclaredFriends: 100 + i,
		})
		_ = st.AddLike(u, pa, t0.Add(time.Duration(i)*time.Hour))
		aLikers = append(aLikers, u)
	}
	for i := 0; i < 150; i++ {
		u := st.AddUser(socialnet.User{
			Gender: global.SampleGender(r), Age: global.SampleAge(r),
			Country: socialnet.CountryTurkey, FriendsPublic: i%2 == 0,
			DeclaredFriends: 50,
		})
		_ = st.AddLike(u, pb, t0.Add(time.Duration(i)*time.Hour))
		bLikers = append(bLikers, u)
	}
	return st, []Campaign{
		{ID: "A", Provider: "P1", Page: pa, Likers: aLikers, Active: true},
		{ID: "B", Provider: "P2", Page: pb, Likers: bLikers, Active: true},
		{ID: "C", Provider: "P3", Page: pb, Likers: nil, Active: false},
	}
}

func TestLocationBreakdown(t *testing.T) {
	st, camps := buildWorld(t)
	rows, err := LocationBreakdown(st, camps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d (inactive should be skipped)", len(rows))
	}
	if rows[0].Percent[socialnet.CountryIndia] != 100 {
		t.Fatalf("A india pct = %v", rows[0].Percent)
	}
	if rows[1].Percent[socialnet.CountryTurkey] != 100 {
		t.Fatalf("B turkey pct = %v", rows[1].Percent)
	}
	if rows[0].Total != 200 || rows[1].Total != 150 {
		t.Fatalf("totals = %d/%d", rows[0].Total, rows[1].Total)
	}
}

func TestLocationFoldsUnknownIntoOther(t *testing.T) {
	st := socialnet.NewStore()
	p, _ := st.AddPage(socialnet.Page{Name: "X", Honeypot: true})
	u := st.AddUser(socialnet.User{Country: "Narnia"})
	_ = st.AddLike(u, p, t0)
	rows, err := LocationBreakdown(st, []Campaign{{ID: "X", Provider: "P", Page: p, Likers: []socialnet.UserID{u}, Active: true}})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Percent[socialnet.CountryOther] != 100 {
		t.Fatalf("other pct = %v", rows[0].Percent)
	}
}

func TestDemographics(t *testing.T) {
	st, camps := buildWorld(t)
	rows, err := Demographics(st, camps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	a, b := rows[0], rows[1]
	if a.MalePct < 85 {
		t.Fatalf("A male pct = %v, want >85 (young male profile)", a.MalePct)
	}
	// A's age distribution is heavily young => large KL; B mirrors the
	// global distribution => small KL.
	if a.KL < 0.5 {
		t.Fatalf("A KL = %v, want large", a.KL)
	}
	if b.KL > 0.25 {
		t.Fatalf("B KL = %v, want small", b.KL)
	}
	// Percentages sum to 100.
	sum := 0.0
	for _, v := range a.AgePct {
		sum += v
	}
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("A ages sum to %v", sum)
	}
}

func TestGlobalDemoRow(t *testing.T) {
	row := GlobalDemoRow()
	if row.FemalePct != 46 || row.MalePct != 54 {
		t.Fatalf("global split = %v/%v", row.FemalePct, row.MalePct)
	}
	if math.Abs(row.AgePct[0]-14.9) > 0.2 {
		t.Fatalf("global 13-17 = %v", row.AgePct[0])
	}
}

func TestSortCampaigns(t *testing.T) {
	camps := []Campaign{{ID: "Z"}, {ID: "B"}, {ID: "A"}, {ID: "Q"}}
	out := SortCampaigns(camps, []string{"A", "B"})
	want := []string{"A", "B", "Q", "Z"}
	for i, w := range want {
		if out[i].ID != w {
			t.Fatalf("order = %v", out)
		}
	}
}

func TestAssignGroupsALMS(t *testing.T) {
	st := socialnet.NewStore()
	pAL, _ := st.AddPage(socialnet.Page{Name: "al", Honeypot: true})
	pMS, _ := st.AddPage(socialnet.Page{Name: "ms", Honeypot: true})
	alOnly := st.AddUser(socialnet.User{})
	msOnly := st.AddUser(socialnet.User{})
	both := st.AddUser(socialnet.User{})
	_ = st.AddLike(alOnly, pAL, t0)
	_ = st.AddLike(msOnly, pMS, t0)
	_ = st.AddLike(both, pAL, t0)
	_ = st.AddLike(both, pMS, t0)
	camps := []Campaign{
		{ID: "AL-USA", Provider: "AL", Page: pAL, Likers: []socialnet.UserID{alOnly, both}, Active: true},
		{ID: "MS-USA", Provider: "MS", Page: pMS, Likers: []socialnet.UserID{msOnly, both}, Active: true},
	}
	ga := AssignGroups(camps, "AL", "MS")
	if ga.ByUser[alOnly] != "AL" || ga.ByUser[msOnly] != "MS" {
		t.Fatalf("single-provider assignment wrong: %v", ga.ByUser)
	}
	if ga.ByUser[both] != ALMSGroup {
		t.Fatalf("both-user assigned to %q", ga.ByUser[both])
	}
	if len(ga.Groups["AL"]) != 1 || len(ga.Groups["MS"]) != 1 || len(ga.Groups[ALMSGroup]) != 1 {
		t.Fatalf("groups = %v", ga.Groups)
	}
	// ALMS comes last in presentation order.
	if ga.Order[len(ga.Order)-1] != ALMSGroup {
		t.Fatalf("order = %v", ga.Order)
	}
}

func TestSocialGraphTable(t *testing.T) {
	st := socialnet.NewStore()
	p1, _ := st.AddPage(socialnet.Page{Name: "p1", Honeypot: true})
	var likers []socialnet.UserID
	for i := 0; i < 6; i++ {
		u := st.AddUser(socialnet.User{FriendsPublic: true, DeclaredFriends: 10 * (i + 1)})
		_ = st.AddLike(u, p1, t0)
		likers = append(likers, u)
	}
	// One private liker.
	priv := st.AddUser(socialnet.User{FriendsPublic: false, DeclaredFriends: 1000})
	_ = st.AddLike(priv, p1, t0)
	likers = append(likers, priv)
	// Friendships: 0-1 direct; 2 and 3 share a mutual friend.
	mutual := st.AddUser(socialnet.User{})
	_ = st.Friend(likers[0], likers[1])
	_ = st.Friend(likers[2], mutual)
	_ = st.Friend(likers[3], mutual)

	camps := []Campaign{{ID: "X", Provider: "PX", Page: p1, Likers: likers, Active: true}}
	ga := AssignGroups(camps, "AL", "MS")
	rows, err := SocialGraphTable(st, ga, st.FriendGraph())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	if row.Likers != 7 {
		t.Fatalf("likers = %d", row.Likers)
	}
	if row.PublicFriendLists != 6 {
		t.Fatalf("public lists = %d (private excluded)", row.PublicFriendLists)
	}
	// Private liker's 1000 friends must not contribute to stats.
	if row.AvgFriends > 100 {
		t.Fatalf("avg friends = %v includes private profile", row.AvgFriends)
	}
	if row.MedianFriends != 35 {
		t.Fatalf("median friends = %v, want 35", row.MedianFriends)
	}
	if row.DirectFriendships != 1 {
		t.Fatalf("direct = %d, want 1", row.DirectFriendships)
	}
	// 2-hop: the direct pair + the mutual-friend pair.
	if row.TwoHopRelations != 2 {
		t.Fatalf("2-hop = %d, want 2", row.TwoHopRelations)
	}
}

func TestLikerGraphsAndCensus(t *testing.T) {
	st := socialnet.NewStore()
	p1, _ := st.AddPage(socialnet.Page{Name: "p1", Honeypot: true})
	p2, _ := st.AddPage(socialnet.Page{Name: "p2", Honeypot: true})
	var g1, g2 []socialnet.UserID
	for i := 0; i < 4; i++ {
		u := st.AddUser(socialnet.User{})
		_ = st.AddLike(u, p1, t0)
		g1 = append(g1, u)
	}
	for i := 0; i < 3; i++ {
		u := st.AddUser(socialnet.User{})
		_ = st.AddLike(u, p2, t0)
		g2 = append(g2, u)
	}
	// P1 likers form a pair; P2 likers form a triplet.
	_ = st.Friend(g1[0], g1[1])
	_ = st.Friend(g2[0], g2[1])
	_ = st.Friend(g2[1], g2[2])
	// A cross-provider edge.
	_ = st.Friend(g1[2], g2[2])

	camps := []Campaign{
		{ID: "C1", Provider: "P1", Page: p1, Likers: g1, Active: true},
		{ID: "C2", Provider: "P2", Page: p2, Likers: g2, Active: true},
	}
	ga := AssignGroups(camps, "AL", "MS")
	direct, twoHop := LikerGraphs(ga, st.FriendGraph())
	if direct.NumNodes() != 7 {
		t.Fatalf("direct nodes = %d", direct.NumNodes())
	}
	if direct.NumEdges() != 4 {
		t.Fatalf("direct edges = %d", direct.NumEdges())
	}
	if twoHop.NumEdges() < direct.NumEdges() {
		t.Fatal("2-hop must be a superset of direct")
	}
	census := CensusByProvider(ga, direct)
	if len(census) != 2 {
		t.Fatalf("census rows = %d", len(census))
	}
	cross := CrossProviderEdges(ga, direct)
	if cross[[2]string{"P1", "P2"}] != 1 {
		t.Fatalf("cross edges = %v", cross)
	}
}

func TestPageLikeCDFs(t *testing.T) {
	st := socialnet.NewStore()
	hp, _ := st.AddPage(socialnet.Page{Name: "hp", Honeypot: true})
	// 10 likers with like-counts 1..10 (plus the honeypot like itself).
	var likers []socialnet.UserID
	for i := 1; i <= 10; i++ {
		u := st.AddUser(socialnet.User{})
		for j := 0; j < i; j++ {
			p, _ := st.AddPage(socialnet.Page{Name: "x"})
			_ = st.AddLike(u, p, t0)
		}
		_ = st.AddLike(u, hp, t0)
		likers = append(likers, u)
	}
	var baseline []socialnet.UserID
	for i := 0; i < 5; i++ {
		u := st.AddUser(socialnet.User{})
		p, _ := st.AddPage(socialnet.Page{Name: "y"})
		_ = st.AddLike(u, p, t0)
		baseline = append(baseline, u)
	}
	camps := []Campaign{{ID: "X", Provider: "P", Page: hp, Likers: likers, Active: true}}
	cdfs, err := PageLikeCDFs(st, camps, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs) != 2 {
		t.Fatalf("cdfs = %d", len(cdfs))
	}
	if cdfs[0].CampaignID != "X" || cdfs[0].N != 10 {
		t.Fatalf("campaign cdf = %+v", cdfs[0])
	}
	// Counts include the honeypot like: median of 2..11 = 6.5.
	if cdfs[0].Median != 6.5 {
		t.Fatalf("median = %v, want 6.5", cdfs[0].Median)
	}
	if cdfs[1].CampaignID != "Facebook" || cdfs[1].Median != 1 {
		t.Fatalf("baseline cdf = %+v", cdfs[1])
	}
}

func TestBaselineSample(t *testing.T) {
	st := socialnet.NewStore()
	for i := 0; i < 50; i++ {
		st.AddUser(socialnet.User{Searchable: i%2 == 0})
	}
	r := rand.New(rand.NewSource(2))
	got, err := BaselineSample(r, st, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("sample = %d", len(got))
	}
	seen := map[socialnet.UserID]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatal("duplicate in sample")
		}
		seen[u] = true
		usr, _ := st.User(u)
		if !usr.Searchable {
			t.Fatal("non-searchable user sampled")
		}
	}
	if _, err := BaselineSample(r, st, 100); err == nil {
		t.Fatal("oversized sample accepted")
	}
	if _, err := BaselineSample(r, st, 0); err == nil {
		t.Fatal("zero sample accepted")
	}
}

func TestJaccardMatrices(t *testing.T) {
	st := socialnet.NewStore()
	hp1, _ := st.AddPage(socialnet.Page{Name: "hp1", Honeypot: true})
	hp2, _ := st.AddPage(socialnet.Page{Name: "hp2", Honeypot: true})
	shared, _ := st.AddPage(socialnet.Page{Name: "shared"})
	only1, _ := st.AddPage(socialnet.Page{Name: "only1"})
	only2, _ := st.AddPage(socialnet.Page{Name: "only2"})

	u1 := st.AddUser(socialnet.User{})
	_ = st.AddLike(u1, hp1, t0)
	_ = st.AddLike(u1, shared, t0)
	_ = st.AddLike(u1, only1, t0)

	u2 := st.AddUser(socialnet.User{})
	_ = st.AddLike(u2, hp2, t0)
	_ = st.AddLike(u2, shared, t0)
	_ = st.AddLike(u2, only2, t0)

	camps := []Campaign{
		{ID: "C1", Provider: "P", Page: hp1, Likers: []socialnet.UserID{u1}, Active: true},
		{ID: "C2", Provider: "P", Page: hp2, Likers: []socialnet.UserID{u2}, Active: true},
		{ID: "C3", Provider: "P", Page: hp2, Active: false},
	}
	pageSim, userSim, err := JaccardMatrices(st, camps)
	if err != nil {
		t.Fatal(err)
	}
	// Page sets: {shared, only1} vs {shared, only2} -> J = 1/3.
	if math.Abs(pageSim[0][1]-100.0/3) > 0.01 {
		t.Fatalf("pageSim = %v", pageSim[0][1])
	}
	if pageSim[0][1] != pageSim[1][0] {
		t.Fatal("page matrix not symmetric")
	}
	if pageSim[0][0] != 100 {
		t.Fatal("diagonal should be 100 for active campaigns")
	}
	// Inactive row all zero.
	for j := range pageSim[2] {
		if pageSim[2][j] != 0 {
			t.Fatalf("inactive row = %v", pageSim[2])
		}
	}
	// Liker sets disjoint.
	if userSim[0][1] != 0 {
		t.Fatalf("userSim = %v", userSim[0][1])
	}
}

func TestTemporalBurstiness(t *testing.T) {
	burst := Burstiness(TemporalSeries{CampaignID: "SF", Values: []int{0, 900, 950, 950, 950}})
	if burst.MaxDayJumpFrac < 0.9 {
		t.Fatalf("burst MaxDayJumpFrac = %v", burst.MaxDayJumpFrac)
	}
	if burst.DaysTo90Pct > 2 {
		t.Fatalf("burst DaysTo90Pct = %d", burst.DaysTo90Pct)
	}
	trickle := Burstiness(TemporalSeries{CampaignID: "BL", Values: []int{0, 60, 120, 180, 240, 300, 360, 420, 480, 540, 600, 660, 720, 780, 840, 900}})
	if trickle.MaxDayJumpFrac > 0.1 {
		t.Fatalf("trickle MaxDayJumpFrac = %v", trickle.MaxDayJumpFrac)
	}
	if trickle.DaysTo90Pct < 13 {
		t.Fatalf("trickle DaysTo90Pct = %d", trickle.DaysTo90Pct)
	}
	empty := Burstiness(TemporalSeries{CampaignID: "E"})
	if empty.Total != 0 || empty.MaxDayJumpFrac != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
	zero := Burstiness(TemporalSeries{CampaignID: "Z", Values: []int{0, 0, 0}})
	if zero.Total != 0 {
		t.Fatalf("zero stats = %+v", zero)
	}
}

func TestInterLikeGaps(t *testing.T) {
	ts := []time.Time{t0, t0.Add(time.Hour), t0.Add(3 * time.Hour)}
	gaps, err := InterLikeGaps(ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 2 || gaps[0] != time.Hour || gaps[1] != 2*time.Hour {
		t.Fatalf("gaps = %v", gaps)
	}
	if _, err := InterLikeGaps([]time.Time{t0.Add(time.Hour), t0}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if gaps, err := InterLikeGaps(ts[:1]); err != nil || gaps != nil {
		t.Fatalf("single element = %v, %v", gaps, err)
	}
}

func TestWindowAnalysis(t *testing.T) {
	// 10 likes within one hour + 2 stragglers days later.
	var ts []time.Time
	for i := 0; i < 10; i++ {
		ts = append(ts, t0.Add(time.Duration(i*6)*time.Minute))
	}
	ts = append(ts, t0.Add(100*time.Hour), t0.Add(200*time.Hour))
	ws, err := WindowAnalysis("X", ts)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Total != 12 || ws.MaxIn2h != 10 {
		t.Fatalf("stats = %+v", ws)
	}
	if ws.MaxFrac2h < 0.8 || ws.MaxFrac2h > 0.84 {
		t.Fatalf("frac = %v, want 10/12", ws.MaxFrac2h)
	}
	if ws.ActiveWindows != 3 {
		t.Fatalf("active windows = %d, want 3", ws.ActiveWindows)
	}
	empty, err := WindowAnalysis("E", nil)
	if err != nil || empty.Total != 0 || empty.MaxIn2h != 0 {
		t.Fatalf("empty = %+v, %v", empty, err)
	}
}

func TestMaxWithinWindow(t *testing.T) {
	ts := []time.Time{t0, t0.Add(time.Minute), t0.Add(90 * time.Minute), t0.Add(30 * time.Hour)}
	n, err := MaxWithinWindow(ts, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("max in window = %d", n)
	}
	if _, err := MaxWithinWindow(ts, 0); err == nil {
		t.Fatal("zero window accepted")
	}
	if n, err := MaxWithinWindow(nil, time.Hour); err != nil || n != 0 {
		t.Fatalf("empty = %d, %v", n, err)
	}
}

func TestTwoHopViaBaseOnlyUsers(t *testing.T) {
	// A mutual friend who is NOT a liker must still create a 2-hop
	// relation (the paper counts mutual friends from all of Facebook).
	base := graph.NewUndirected()
	_ = base.AddEdge(1, 100)
	_ = base.AddEdge(2, 100)
	th := graph.TwoHopClosure([]int64{1, 2}, base)
	if !th.HasEdge(1, 2) {
		t.Fatal("mutual friend outside liker set ignored")
	}
}
