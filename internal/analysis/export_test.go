package analysis

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/socialnet"
)

func exportFixture(t *testing.T) (*graph.Undirected, *GroupAssignment) {
	t.Helper()
	g := graph.NewUndirected()
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4)
	_ = g.AddEdge(4, 5)
	g.AddNode(6) // isolated
	ga := &GroupAssignment{
		ByUser: map[socialnet.UserID]string{
			1: "P1", 2: "P1", 3: "P2", 4: "P2", 5: "P2", 6: "P1",
		},
		Groups: map[string][]socialnet.UserID{
			"P1": {1, 2, 6}, "P2": {3, 4, 5},
		},
		Order: []string{"P1", "P2"},
	}
	return g, ga
}

func TestLikerGraphDOTBasic(t *testing.T) {
	g, ga := exportFixture(t)
	dot := LikerGraphDOT(g, ga, DOTOptions{Name: "test"})
	if !strings.HasPrefix(dot, `graph "test" {`) || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	for _, want := range []string{"n1 --", "n3 --", "n4 -- n5"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("missing edge %q:\n%s", want, dot)
		}
	}
	// Isolated node 6 excluded by default.
	if strings.Contains(dot, "n6 [") {
		t.Fatalf("isolated node included by default:\n%s", dot)
	}
	// Provider colors differ.
	if !strings.Contains(dot, "steelblue") || !strings.Contains(dot, "firebrick") {
		t.Fatalf("provider colors missing:\n%s", dot)
	}
	// Tooltips carry the provider labels.
	if !strings.Contains(dot, `tooltip="P2"`) {
		t.Fatalf("tooltip missing:\n%s", dot)
	}
}

func TestLikerGraphDOTIncludeIsolated(t *testing.T) {
	g, ga := exportFixture(t)
	dot := LikerGraphDOT(g, ga, DOTOptions{IncludeIsolated: true})
	if !strings.Contains(dot, "n6 [") {
		t.Fatalf("isolated node missing with IncludeIsolated:\n%s", dot)
	}
	if !strings.Contains(dot, `graph "likers"`) {
		t.Fatalf("default name missing:\n%s", dot)
	}
}

func TestLikerGraphDOTMaxNodes(t *testing.T) {
	g, ga := exportFixture(t)
	// Cap at 3: only the largest component (3-4-5) fits.
	dot := LikerGraphDOT(g, ga, DOTOptions{MaxNodes: 3})
	if !strings.Contains(dot, "n3 [") || strings.Contains(dot, "n1 [") {
		t.Fatalf("MaxNodes should keep only the largest component:\n%s", dot)
	}
	// Edges to dropped nodes are excluded.
	if strings.Contains(dot, "n1 -- n2") {
		t.Fatalf("edge of dropped component present:\n%s", dot)
	}
}

func TestLikerGraphDOTUnknownProviderGray(t *testing.T) {
	g := graph.NewUndirected()
	_ = g.AddEdge(7, 8)
	ga := &GroupAssignment{
		ByUser: map[socialnet.UserID]string{},
		Groups: map[string][]socialnet.UserID{},
	}
	dot := LikerGraphDOT(g, ga, DOTOptions{})
	if !strings.Contains(dot, `color="gray"`) {
		t.Fatalf("unknown provider should be gray:\n%s", dot)
	}
}
