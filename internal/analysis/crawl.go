package analysis

import (
	"encoding/json"
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/socialnet"
	"repro/internal/stats"
)

// This file is the crawl-side twin of the journal aggregators in
// stream.go: the §4 analyses computed from what an HTTP crawl observes
// (page like streams and crawled liker profiles) instead of from a
// local journal. The two engines share every finalize code path
// (geoRowFrom, demoRowFrom, WindowAnalysis, newPageLikeCDF,
// bitmapJaccard, similarityMatrices), so on a fully monitored world
// they produce byte-identical tables — the equivalence the paper's
// reproduction needs to trust a remote crawl.

// CrawlCampaign is one honeypot campaign as the crawl-side analyses
// see it: the roster entry a crawler can reconstruct from the API
// (page, label) plus the active flag. Likers are NOT part of the
// roster — the crawl discovers them, which is the point.
type CrawlCampaign struct {
	// ID is the campaign label, e.g. "FB-USA".
	ID string
	// Page is the campaign's honeypot page.
	Page socialnet.PageID
	// Active is false for paid-but-never-delivered campaigns; they
	// produce empty rows exactly as in the journal engine.
	Active bool
}

// CrawlProfile is one crawled liker profile in analysis-domain types:
// the §3 data-collection unit after the wire strings are parsed back
// into enums. PageLikes is the user's full public page-like list —
// their entire journal presence, campaign likes and cover history
// alike — which is what makes the crawl-side CDF and Jaccard equal the
// journal-side ones.
type CrawlProfile struct {
	User          socialnet.UserID
	Gender        socialnet.Gender
	Age           socialnet.AgeBracket
	Country       string
	Friends       []socialnet.UserID
	FriendsHidden bool
	PageLikes     []socialnet.PageID
}

// LikesCampaign reports whether the profile's page-like list contains
// the page — campaign membership as the crawl observes it.
func (p *CrawlProfile) LikesCampaign(page socialnet.PageID) bool {
	return slices.Contains(p.PageLikes, page)
}

// CrawlAggregator is a streaming crawl-side §4 analysis. It observes
// two sub-streams the crawl produces:
//
//   - ObserveLike: every event of a crawled page's like stream,
//     delivered exactly once (the pipeline's cursor windows guarantee
//     exactly-once within a crawl, the checkpointed cursors across
//     resumes).
//   - ObserveProfile: every crawled liker profile, exactly once per
//     user across all campaigns (the pipeline's dedup set).
//
// Determinism rules are the journal rules of DESIGN.md §8 transplanted:
// both observers must be ORDER-INSENSITIVE folds — the pipeline's
// emission order is scheduling-dependent, only the observed SET is a
// pure function of the world — and Finalize must emit rows in campaign
// (roster-slice) order. State/Restore round-trip the fold mid-stream so
// aggregator progress rides inside the crawl checkpoint: a restored
// aggregator that observes exactly the complement of what its snapshot
// covered finalizes byte-identically to an uninterrupted one.
type CrawlAggregator interface {
	// ObserveProfile folds one crawled profile.
	ObserveProfile(p CrawlProfile)
	// ObserveLike folds one page-stream like event.
	ObserveLike(page socialnet.PageID, user socialnet.UserID, at time.Time)
	// Finalize completes the fold.
	Finalize() error
	// State serializes the fold's progress (JSON).
	State() ([]byte, error)
	// Restore replaces the fold's progress with a prior State.
	Restore(data []byte) error
}

// crawlPageIdx maps page ID to campaign index as a dense array (-1 =
// not a campaign page) — the CrawlCampaign twin of densePageIndex.
func crawlPageIdx(campaigns []CrawlCampaign, activeOnly bool) []int32 {
	var maxPage socialnet.PageID
	for _, c := range campaigns {
		if c.Page > maxPage {
			maxPage = c.Page
		}
	}
	idx := make([]int32, maxPage+1)
	for i := range idx {
		idx[i] = -1
	}
	for i, c := range campaigns {
		if activeOnly && !c.Active {
			continue
		}
		idx[c.Page] = int32(i)
	}
	return idx
}

// asCampaigns converts the crawl roster to the minimal []Campaign the
// shared finalize helpers (similarityMatrices) accept.
func asCampaigns(campaigns []CrawlCampaign) []Campaign {
	out := make([]Campaign, len(campaigns))
	for i, c := range campaigns {
		out[i] = Campaign{ID: c.ID, Page: c.Page, Active: c.Active}
	}
	return out
}

// ---- Figure 1: geolocation ----

// CrawlGeoAggregator streams Figure 1 from crawled profiles: a profile
// counts toward every active campaign whose page it likes (the crawl's
// observable for "liker of campaign i").
type CrawlGeoAggregator struct {
	campaigns []CrawlCampaign
	known     map[string]bool

	counts []map[string]float64
	totals []int
	rows   []GeoRow
}

// crawlGeoState is the serialized fold.
type crawlGeoState struct {
	Counts []map[string]float64 `json:"counts"`
	Totals []int                `json:"totals"`
}

// NewCrawlGeoAggregator builds the crawl-side Figure 1 aggregator.
func NewCrawlGeoAggregator(campaigns []CrawlCampaign) *CrawlGeoAggregator {
	g := &CrawlGeoAggregator{
		campaigns: campaigns,
		known:     knownCountries(),
		counts:    make([]map[string]float64, len(campaigns)),
		totals:    make([]int, len(campaigns)),
	}
	for i, c := range campaigns {
		if c.Active {
			g.counts[i] = make(map[string]float64)
		}
	}
	return g
}

// ObserveProfile implements CrawlAggregator.
func (g *CrawlGeoAggregator) ObserveProfile(p CrawlProfile) {
	label := p.Country
	if !g.known[label] {
		label = socialnet.CountryOther
	}
	for i, c := range g.campaigns {
		if c.Active && p.LikesCampaign(c.Page) {
			g.counts[i][label]++
			g.totals[i]++
		}
	}
}

// ObserveLike implements CrawlAggregator (geolocation reads profiles
// only).
func (g *CrawlGeoAggregator) ObserveLike(socialnet.PageID, socialnet.UserID, time.Time) {}

// Finalize implements CrawlAggregator.
func (g *CrawlGeoAggregator) Finalize() error {
	for i, c := range g.campaigns {
		if !c.Active {
			continue
		}
		g.rows = append(g.rows, geoRowFrom(c.ID, g.counts[i], g.totals[i]))
	}
	return nil
}

// Rows returns the Figure 1 rows (valid after Finalize).
func (g *CrawlGeoAggregator) Rows() []GeoRow { return g.rows }

// State implements CrawlAggregator.
func (g *CrawlGeoAggregator) State() ([]byte, error) {
	return json.Marshal(crawlGeoState{Counts: g.counts, Totals: g.totals})
}

// Restore implements CrawlAggregator.
func (g *CrawlGeoAggregator) Restore(data []byte) error {
	var st crawlGeoState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("analysis: crawl geo state: %w", err)
	}
	if len(st.Counts) != len(g.campaigns) || len(st.Totals) != len(g.campaigns) {
		return fmt.Errorf("analysis: crawl geo state covers %d campaigns, roster has %d", len(st.Counts), len(g.campaigns))
	}
	g.counts, g.totals = st.Counts, st.Totals
	for i, c := range g.campaigns {
		if c.Active && g.counts[i] == nil {
			g.counts[i] = make(map[string]float64)
		}
	}
	return nil
}

// ---- Table 2: demographics ----

// crawlDemoTally is demoTally with exported fields so it serializes
// into the crawl checkpoint.
type crawlDemoTally struct {
	Age [6]float64 `json:"age"`
	NF  int        `json:"nf"`
	NM  int        `json:"nm"`
	N   int        `json:"n"`
}

func (t *crawlDemoTally) observe(p CrawlProfile) {
	switch p.Gender {
	case socialnet.GenderFemale:
		t.NF++
	case socialnet.GenderMale:
		t.NM++
	}
	if int(p.Age) < len(t.Age) {
		t.Age[p.Age]++
	}
	t.N++
}

// CrawlDemoAggregator streams Table 2 from crawled profiles.
type CrawlDemoAggregator struct {
	campaigns []CrawlCampaign
	tallies   []crawlDemoTally
	rows      []DemoRow
}

// NewCrawlDemoAggregator builds the crawl-side Table 2 aggregator.
func NewCrawlDemoAggregator(campaigns []CrawlCampaign) *CrawlDemoAggregator {
	return &CrawlDemoAggregator{
		campaigns: campaigns,
		tallies:   make([]crawlDemoTally, len(campaigns)),
	}
}

// ObserveProfile implements CrawlAggregator.
func (d *CrawlDemoAggregator) ObserveProfile(p CrawlProfile) {
	for i, c := range d.campaigns {
		if c.Active && p.LikesCampaign(c.Page) {
			d.tallies[i].observe(p)
		}
	}
}

// ObserveLike implements CrawlAggregator.
func (d *CrawlDemoAggregator) ObserveLike(socialnet.PageID, socialnet.UserID, time.Time) {}

// Finalize implements CrawlAggregator.
func (d *CrawlDemoAggregator) Finalize() error {
	for i, c := range d.campaigns {
		if !c.Active {
			continue
		}
		t := d.tallies[i]
		row, err := demoRowFrom(c.ID, demoTally{ageCounts: t.Age, nf: t.NF, nm: t.NM, n: t.N})
		if err != nil {
			return err
		}
		d.rows = append(d.rows, row)
	}
	return nil
}

// Rows returns the Table 2 rows (valid after Finalize).
func (d *CrawlDemoAggregator) Rows() []DemoRow { return d.rows }

// State implements CrawlAggregator.
func (d *CrawlDemoAggregator) State() ([]byte, error) { return json.Marshal(d.tallies) }

// Restore implements CrawlAggregator.
func (d *CrawlDemoAggregator) Restore(data []byte) error {
	var tallies []crawlDemoTally
	if err := json.Unmarshal(data, &tallies); err != nil {
		return fmt.Errorf("analysis: crawl demo state: %w", err)
	}
	if len(tallies) != len(d.campaigns) {
		return fmt.Errorf("analysis: crawl demo state covers %d campaigns, roster has %d", len(tallies), len(d.campaigns))
	}
	d.tallies = tallies
	return nil
}

// ---- Figure 2 (2-hour windows) ----

// CrawlWindowAggregator streams the 2-hour window analysis from the
// crawled pages' like streams. Like the journal twin it covers every
// campaign, active or not, and buffers only the campaign pages' own
// (small) time series.
type CrawlWindowAggregator struct {
	campaigns []CrawlCampaign
	pageIdx   []int32
	times     [][]time.Time
	stats     []WindowStats
}

// NewCrawlWindowAggregator builds the crawl-side window aggregator.
func NewCrawlWindowAggregator(campaigns []CrawlCampaign) *CrawlWindowAggregator {
	return &CrawlWindowAggregator{
		campaigns: campaigns,
		pageIdx:   crawlPageIdx(campaigns, false),
		times:     make([][]time.Time, len(campaigns)),
	}
}

// ObserveProfile implements CrawlAggregator.
func (w *CrawlWindowAggregator) ObserveProfile(CrawlProfile) {}

// ObserveLike implements CrawlAggregator.
func (w *CrawlWindowAggregator) ObserveLike(page socialnet.PageID, _ socialnet.UserID, at time.Time) {
	if i := campaignOf(w.pageIdx, page); i >= 0 {
		w.times[i] = append(w.times[i], at)
	}
}

// Finalize implements CrawlAggregator. The buffered series are sorted
// here — the crawl delivers page streams in append order, not time
// order, exactly like the journal's shard-canonical streams.
func (w *CrawlWindowAggregator) Finalize() error {
	w.stats = make([]WindowStats, len(w.campaigns))
	for i, c := range w.campaigns {
		ts := w.times[i]
		sort.Slice(ts, func(a, b int) bool { return ts[a].Before(ts[b]) })
		ws, err := WindowAnalysis(c.ID, ts)
		if err != nil {
			return err
		}
		w.stats[i] = ws
	}
	return nil
}

// Stats returns one WindowStats per campaign in roster order (valid
// after Finalize).
func (w *CrawlWindowAggregator) Stats() []WindowStats { return w.stats }

// State implements CrawlAggregator. time.Time serializes at
// nanosecond precision, so the restored series is bit-identical.
func (w *CrawlWindowAggregator) State() ([]byte, error) { return json.Marshal(w.times) }

// Restore implements CrawlAggregator.
func (w *CrawlWindowAggregator) Restore(data []byte) error {
	var times [][]time.Time
	if err := json.Unmarshal(data, &times); err != nil {
		return fmt.Errorf("analysis: crawl window state: %w", err)
	}
	if len(times) != len(w.campaigns) {
		return fmt.Errorf("analysis: crawl window state covers %d campaigns, roster has %d", len(times), len(w.campaigns))
	}
	w.times = times
	return nil
}

// ---- Figure 4: page-like count CDFs ----

// CrawlCDFAggregator streams Figure 4 from crawled profiles: a liker's
// count is the length of their crawled page-like list (their total
// journal presence), and the organic baseline sample — when its IDs
// are known and its profiles were crawled too — appears as the
// "Facebook" row, exactly as in §4.4.
type CrawlCDFAggregator struct {
	campaigns   []CrawlCampaign
	baseline    []socialnet.UserID
	baselineSet map[socialnet.UserID]struct{}

	members [][]socialnet.UserID
	counts  map[socialnet.UserID]int32
	rows    []PageLikeCDF
	// conflicts counts per-user count disagreements MergeState resolved
	// (crawl-timing drift across shards); see MergeConflicts.
	conflicts int
}

// crawlCDFState is the serialized fold.
type crawlCDFState struct {
	Members [][]socialnet.UserID       `json:"members"`
	Counts  map[socialnet.UserID]int32 `json:"counts"`
}

// NewCrawlCDFAggregator builds the crawl-side Figure 4 aggregator.
// baseline may be empty; then no "Facebook" row is produced.
func NewCrawlCDFAggregator(campaigns []CrawlCampaign, baseline []socialnet.UserID) *CrawlCDFAggregator {
	set := make(map[socialnet.UserID]struct{}, len(baseline))
	for _, u := range baseline {
		set[u] = struct{}{}
	}
	return &CrawlCDFAggregator{
		campaigns:   campaigns,
		baseline:    baseline,
		baselineSet: set,
		members:     make([][]socialnet.UserID, len(campaigns)),
		counts:      make(map[socialnet.UserID]int32),
	}
}

// ObserveProfile implements CrawlAggregator.
func (a *CrawlCDFAggregator) ObserveProfile(p CrawlProfile) {
	_, tracked := a.baselineSet[p.User]
	for i, c := range a.campaigns {
		if c.Active && p.LikesCampaign(c.Page) {
			a.members[i] = append(a.members[i], p.User)
			tracked = true
		}
	}
	if tracked {
		a.counts[p.User] = int32(len(p.PageLikes))
	}
}

// ObserveLike implements CrawlAggregator.
func (a *CrawlCDFAggregator) ObserveLike(socialnet.PageID, socialnet.UserID, time.Time) {}

// Finalize implements CrawlAggregator.
func (a *CrawlCDFAggregator) Finalize() error {
	build := func(id string, users []socialnet.UserID) error {
		if len(users) == 0 {
			return nil
		}
		counts := make([]float64, len(users))
		for i, u := range users {
			counts[i] = float64(a.counts[u])
		}
		row, err := newPageLikeCDF(id, counts)
		if err != nil {
			return err
		}
		a.rows = append(a.rows, row)
		return nil
	}
	for i, c := range a.campaigns {
		if !c.Active {
			continue
		}
		if err := build(c.ID, a.members[i]); err != nil {
			return err
		}
	}
	return build("Facebook", a.baseline)
}

// Rows returns the Figure 4 rows (valid after Finalize).
func (a *CrawlCDFAggregator) Rows() []PageLikeCDF { return a.rows }

// State implements CrawlAggregator. Member lists are sorted in the
// snapshot (row assembly sorts its own copies, so order never reaches
// the output) to keep the checkpoint bytes scheduling-independent.
func (a *CrawlCDFAggregator) State() ([]byte, error) {
	st := crawlCDFState{Members: make([][]socialnet.UserID, len(a.members)), Counts: a.counts}
	for i, m := range a.members {
		st.Members[i] = append([]socialnet.UserID(nil), m...)
		slices.Sort(st.Members[i])
	}
	return json.Marshal(st)
}

// Restore implements CrawlAggregator.
func (a *CrawlCDFAggregator) Restore(data []byte) error {
	var st crawlCDFState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("analysis: crawl CDF state: %w", err)
	}
	if len(st.Members) != len(a.campaigns) {
		return fmt.Errorf("analysis: crawl CDF state covers %d campaigns, roster has %d", len(st.Members), len(a.campaigns))
	}
	a.members, a.counts = st.Members, st.Counts
	if a.counts == nil {
		a.counts = make(map[socialnet.UserID]int32)
	}
	return nil
}

// ---- Figure 5: Jaccard similarity ----

// CrawlJaccardAggregator streams Figure 5 from crawled profiles: each
// campaign's page union is assembled from its likers' crawled
// page-like lists (excluding the campaign's own honeypot page), its
// liker set from crawl-observed membership.
type CrawlJaccardAggregator struct {
	campaigns []CrawlCampaign

	pageSeen [][]bool
	users    []map[socialnet.UserID]struct{}
	pageSim  [][]float64
	userSim  [][]float64
}

// crawlJaccardState is the serialized fold: bitmaps and sets flattened
// to sorted ID lists.
type crawlJaccardState struct {
	Pages [][]socialnet.PageID `json:"pages"`
	Users [][]socialnet.UserID `json:"users"`
}

// NewCrawlJaccardAggregator builds the crawl-side Figure 5 aggregator.
func NewCrawlJaccardAggregator(campaigns []CrawlCampaign) *CrawlJaccardAggregator {
	j := &CrawlJaccardAggregator{
		campaigns: campaigns,
		pageSeen:  make([][]bool, len(campaigns)),
		users:     make([]map[socialnet.UserID]struct{}, len(campaigns)),
	}
	for i := range campaigns {
		j.users[i] = make(map[socialnet.UserID]struct{})
	}
	return j
}

// ObserveProfile implements CrawlAggregator.
func (j *CrawlJaccardAggregator) ObserveProfile(p CrawlProfile) {
	for i, c := range j.campaigns {
		if !c.Active || !p.LikesCampaign(c.Page) {
			continue
		}
		j.users[i][p.User] = struct{}{}
		for _, pg := range p.PageLikes {
			if pg == c.Page {
				continue // exclude the campaign's own honeypot page
			}
			seen := j.pageSeen[i]
			if int(pg) >= len(seen) {
				grown := make([]bool, int(pg)+1)
				copy(grown, seen)
				seen = grown
				j.pageSeen[i] = seen
			}
			seen[pg] = true
		}
	}
}

// ObserveLike implements CrawlAggregator.
func (j *CrawlJaccardAggregator) ObserveLike(socialnet.PageID, socialnet.UserID, time.Time) {}

// Finalize implements CrawlAggregator.
func (j *CrawlJaccardAggregator) Finalize() error {
	sizes := make([]int, len(j.campaigns))
	for i, seen := range j.pageSeen {
		for _, ok := range seen {
			if ok {
				sizes[i]++
			}
		}
	}
	j.pageSim, j.userSim = similarityMatrices(asCampaigns(j.campaigns),
		func(a, b int) float64 { return 100 * bitmapJaccard(j.pageSeen[a], j.pageSeen[b], sizes[a], sizes[b]) },
		func(a, b int) float64 { return 100 * stats.Jaccard(j.users[a], j.users[b]) })
	return nil
}

// Matrices returns the Figure 5 matrices (valid after Finalize).
func (j *CrawlJaccardAggregator) Matrices() (pageSim, userSim [][]float64) {
	return j.pageSim, j.userSim
}

// State implements CrawlAggregator.
func (j *CrawlJaccardAggregator) State() ([]byte, error) {
	st := crawlJaccardState{
		Pages: make([][]socialnet.PageID, len(j.campaigns)),
		Users: make([][]socialnet.UserID, len(j.campaigns)),
	}
	for i := range j.campaigns {
		st.Pages[i] = []socialnet.PageID{}
		for pg, ok := range j.pageSeen[i] {
			if ok {
				st.Pages[i] = append(st.Pages[i], socialnet.PageID(pg))
			}
		}
		st.Users[i] = make([]socialnet.UserID, 0, len(j.users[i]))
		for u := range j.users[i] {
			st.Users[i] = append(st.Users[i], u)
		}
		slices.Sort(st.Users[i])
	}
	return json.Marshal(st)
}

// Restore implements CrawlAggregator.
func (j *CrawlJaccardAggregator) Restore(data []byte) error {
	var st crawlJaccardState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("analysis: crawl jaccard state: %w", err)
	}
	if len(st.Pages) != len(j.campaigns) || len(st.Users) != len(j.campaigns) {
		return fmt.Errorf("analysis: crawl jaccard state covers %d campaigns, roster has %d", len(st.Pages), len(j.campaigns))
	}
	for i := range j.campaigns {
		j.pageSeen[i] = nil
		for _, pg := range st.Pages[i] {
			if int(pg) >= len(j.pageSeen[i]) {
				grown := make([]bool, int(pg)+1)
				copy(grown, j.pageSeen[i])
				j.pageSeen[i] = grown
			}
			j.pageSeen[i][pg] = true
		}
		j.users[i] = make(map[socialnet.UserID]struct{}, len(st.Users[i]))
		for _, u := range st.Users[i] {
			j.users[i][u] = struct{}{}
		}
	}
	return nil
}

// ---- the bundle ----

// CrawlAnalyzer bundles the standard crawl-side §4 family — geo, demo,
// 2-hour windows, page-like CDFs, Jaccard — behind one observe /
// finalize / snapshot surface.
type CrawlAnalyzer struct {
	Campaigns []CrawlCampaign
	Geo       *CrawlGeoAggregator
	Demo      *CrawlDemoAggregator
	Window    *CrawlWindowAggregator
	CDF       *CrawlCDFAggregator
	Jaccard   *CrawlJaccardAggregator
}

// NewCrawlAnalyzer builds the standard family over a campaign roster
// and an optional baseline sample (for the Figure 4 "Facebook" row;
// the baseline users' profiles must then be crawled too).
func NewCrawlAnalyzer(campaigns []CrawlCampaign, baseline []socialnet.UserID) *CrawlAnalyzer {
	return &CrawlAnalyzer{
		Campaigns: campaigns,
		Geo:       NewCrawlGeoAggregator(campaigns),
		Demo:      NewCrawlDemoAggregator(campaigns),
		Window:    NewCrawlWindowAggregator(campaigns),
		CDF:       NewCrawlCDFAggregator(campaigns, baseline),
		Jaccard:   NewCrawlJaccardAggregator(campaigns),
	}
}

// Aggregators returns the family in its canonical order (the order
// snapshot state is keyed by).
func (a *CrawlAnalyzer) Aggregators() []CrawlAggregator {
	return []CrawlAggregator{a.Geo, a.Demo, a.Window, a.CDF, a.Jaccard}
}

// Tables finalizes every aggregator and assembles the §4 table set.
func (a *CrawlAnalyzer) Tables() (CrawlTables, error) {
	for _, agg := range a.Aggregators() {
		if err := agg.Finalize(); err != nil {
			return CrawlTables{}, err
		}
	}
	t := CrawlTables{
		Campaigns: make([]string, len(a.Campaigns)),
		Geo:       a.Geo.Rows(),
		Demo:      a.Demo.Rows(),
		Windows:   a.Window.Stats(),
		CDFs:      a.CDF.Rows(),
	}
	for i, c := range a.Campaigns {
		t.Campaigns[i] = c.ID
	}
	t.PageSim, t.UserSim = a.Jaccard.Matrices()
	return t, nil
}

// CrawlTables is the crawl-comparable subset of the §4 artifacts: the
// tables both analysis engines can compute. The journal engine's
// Results reduce to the same shape (core.Results.CrawlTables), which
// is what the crawl-vs-journal equivalence tests and the CI smoke
// compare byte-for-byte.
type CrawlTables struct {
	// Campaigns lists the roster IDs in finalize order.
	Campaigns []string
	Geo       []GeoRow       // Figure 1
	Demo      []DemoRow      // Table 2
	Windows   []WindowStats  // Figure 2 at 2-hour granularity
	CDFs      []PageLikeCDF  // Figure 4
	PageSim   [][]float64    // Figure 5(a)
	UserSim   [][]float64    // Figure 5(b)
}

// MarshalStable renders the tables as deterministic JSON: every field
// is a slice, and the only map (GeoRow.Percent) is string-keyed, which
// encoding/json sorts — the same stability argument as
// core.Results.MarshalJSONStable.
func (t *CrawlTables) MarshalStable() ([]byte, error) {
	return json.MarshalIndent(t, "", " ")
}
