package analysis

import (
	"bytes"
	"testing"

	"repro/internal/socialnet"
)

// shardTables runs the crawl fixture as a 2-shard crawl under the
// ownership discipline — shard 0 owns page 100, shard 1 owns 101 and
// 102 — and merges the two aggregator families into a fresh analyzer
// built over the true roster and full baseline.
func shardTables(t *testing.T) []byte {
	t.Helper()
	campaigns, profiles, likes := crawlFixture()
	owns := []func(socialnet.PageID) bool{
		func(p socialnet.PageID) bool { return p == 100 },
		func(p socialnet.PageID) bool { return p != 100 },
	}
	// Baseline sample [3 7] split across the shards; each shard's
	// analyzer carries only its slice, the merged analyzer the full set.
	baselines := [][]socialnet.UserID{{3}, {7}}
	shards := make([]*CrawlAnalyzer, 2)
	for s := range shards {
		shards[s] = NewCrawlAnalyzer(ShardActive(campaigns, owns[s]), baselines[s])
	}
	// Each shard sees the like streams of its owned pages only...
	for _, lk := range likes {
		for s := range shards {
			if !owns[s](lk.Page) {
				continue
			}
			for _, agg := range shards[s].Aggregators() {
				agg.ObserveLike(lk.Page, lk.User, lk.At)
			}
		}
	}
	// ...and the profiles its crawl would fetch: likers of owned pages
	// plus its baseline slice. Users liking pages in both shards are
	// crawled twice — once per shard — which the ownership masking must
	// keep from double-counting.
	for _, p := range profiles {
		for s := range shards {
			fetch := false
			for _, pg := range p.PageLikes {
				if owns[s](pg) {
					fetch = true
				}
			}
			for _, b := range baselines[s] {
				if b == p.User {
					fetch = true
				}
			}
			if !fetch {
				continue
			}
			for _, agg := range shards[s].Aggregators() {
				agg.ObserveProfile(p)
			}
		}
	}
	merged := NewCrawlAnalyzer(campaigns, []socialnet.UserID{3, 7})
	for s := range shards {
		for i, agg := range shards[s].Aggregators() {
			st, err := agg.State()
			if err != nil {
				t.Fatal(err)
			}
			m, ok := merged.Aggregators()[i].(CrawlMerger)
			if !ok {
				t.Fatalf("aggregator %d (%T) does not implement CrawlMerger", i, merged.Aggregators()[i])
			}
			if err := m.MergeState(st); err != nil {
				t.Fatal(err)
			}
		}
	}
	tables, err := merged.Tables()
	if err != nil {
		t.Fatal(err)
	}
	out, err := tables.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestShardedMergeMatchesSingleProcess: the 2-shard crawl's merged
// tables are byte-identical to the single-process crawl's — the merge
// exactness contract the distributed study rests on.
func TestShardedMergeMatchesSingleProcess(t *testing.T) {
	tables := runAnalyzer(t, -1)
	want, err := tables.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	got := shardTables(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded merge diverges from single process:\n%s\nvs\n%s", got, want)
	}
}

// TestShardActiveMasksOwnership: masking keeps the roster shape and
// flips only un-owned campaigns to inactive, without touching the
// caller's slice.
func TestShardActiveMasksOwnership(t *testing.T) {
	campaigns, _, _ := crawlFixture()
	masked := ShardActive(campaigns, func(p socialnet.PageID) bool { return p == 101 })
	if len(masked) != len(campaigns) {
		t.Fatalf("masked roster has %d campaigns, want %d", len(masked), len(campaigns))
	}
	if masked[0].Active || !masked[1].Active || masked[2].Active {
		t.Fatalf("masked actives = %v %v %v, want false true false",
			masked[0].Active, masked[1].Active, masked[2].Active)
	}
	if !campaigns[0].Active {
		t.Fatal("ShardActive mutated the caller's roster")
	}
}

// TestMergeCDFResolvesConflictingCounts: two shards reporting
// different page-like totals for the same user is crawl-timing drift
// (the profile changed between the two shards' observations). The
// merge resolves it deterministically — larger count wins, whichever
// side it arrives from — and reports the conflict instead of aborting
// the whole multi-shard merge.
func TestMergeCDFResolvesConflictingCounts(t *testing.T) {
	campaigns, _, _ := crawlFixture()
	small := CrawlProfile{User: 1, PageLikes: []socialnet.PageID{100, 200}}
	big := CrawlProfile{User: 1, PageLikes: []socialnet.PageID{100, 200, 300}}
	for name, pair := range map[string][2]CrawlProfile{
		"small-then-big": {small, big},
		"big-then-small": {big, small},
	} {
		a := NewCrawlCDFAggregator(campaigns, nil)
		b := NewCrawlCDFAggregator(campaigns, nil)
		a.ObserveProfile(pair[0])
		b.ObserveProfile(pair[1])
		st, err := b.State()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.MergeState(st); err != nil {
			t.Fatalf("%s: merge rejected crawl-timing drift: %v", name, err)
		}
		if a.counts[1] != 3 {
			t.Fatalf("%s: merged count %d, want the larger observation 3", name, a.counts[1])
		}
		if a.MergeConflicts() != 1 {
			t.Fatalf("%s: MergeConflicts = %d, want 1", name, a.MergeConflicts())
		}
	}
}

// TestMergeGeoValidatesBeforeFolding: peer state carrying data for a
// campaign the target holds inactive is rejected with the target
// UNTOUCHED — a failed merge must not leave a whole crawl's
// accumulated state half-folded.
func TestMergeGeoValidatesBeforeFolding(t *testing.T) {
	campaigns, _, _ := crawlFixture()
	full := NewCrawlGeoAggregator(campaigns)
	full.ObserveProfile(CrawlProfile{User: 1, Country: "USA", PageLikes: []socialnet.PageID{100, 101, 102}})
	st, err := full.State()
	if err != nil {
		t.Fatal(err)
	}
	masked := NewCrawlGeoAggregator(ShardActive(campaigns, func(p socialnet.PageID) bool { return p == 100 }))
	masked.ObserveProfile(CrawlProfile{User: 2, Country: "USA", PageLikes: []socialnet.PageID{100}})
	wantTotal := masked.totals[0]
	if err := masked.MergeState(st); err == nil {
		t.Fatal("merge accepted peer data for an inactive campaign")
	}
	if masked.totals[0] != wantTotal || len(masked.counts[0]) != 1 || masked.counts[0]["USA"] != 1 {
		t.Fatalf("rejected merge mutated the target: totals[0]=%d counts[0]=%v", masked.totals[0], masked.counts[0])
	}
}

// TestMergeRejectsRosterMismatch: shard state from a different roster
// size is refused by every aggregator's merge, same as Restore.
func TestMergeRejectsRosterMismatch(t *testing.T) {
	campaigns, _, _ := crawlFixture()
	big := NewCrawlAnalyzer(campaigns, nil)
	small := NewCrawlAnalyzer(campaigns[:1], nil)
	for i, agg := range big.Aggregators() {
		st, err := agg.State()
		if err != nil {
			t.Fatal(err)
		}
		if err := small.Aggregators()[i].(CrawlMerger).MergeState(st); err == nil {
			t.Fatalf("aggregator %d merged state for a different roster", i)
		}
	}
}
