package analysis

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// ProviderGroupRow is one row of Table 3: the likers associated with one
// provider and their friendship structure.
type ProviderGroupRow struct {
	Provider string
	// Likers is the number of distinct likers attributed to the group.
	Likers int
	// PublicFriendLists is how many of them expose their friend list,
	// with PublicPct the percentage.
	PublicFriendLists int
	PublicPct         float64
	// AvgFriends / StdFriends / MedianFriends summarize declared friend
	// counts over likers with public lists.
	AvgFriends    float64
	StdFriends    float64
	MedianFriends float64
	// DirectFriendships is the number of liker–liker friendship edges
	// involving at least one group member.
	DirectFriendships int
	// TwoHopRelations is the number of liker pairs connected directly
	// or via a mutual friend, involving at least one group member.
	TwoHopRelations int
}

// GroupAssignment attributes each liker to a provider group, splitting
// out the ALMS group: users who liked both an AuthenticLikes page and a
// MammothSocials page (§4.3). alProvider/msProvider are the provider
// labels to combine.
type GroupAssignment struct {
	// ByUser maps each liker to its group label.
	ByUser map[socialnet.UserID]string
	// Groups maps group label to its member likers (sorted).
	Groups map[string][]socialnet.UserID
	// Order lists group labels in presentation order.
	Order []string
}

// AssignGroups computes the provider attribution of every liker.
func AssignGroups(campaigns []Campaign, alProvider, msProvider string) *GroupAssignment {
	providerSets := make(map[socialnet.UserID]map[string]bool)
	var providerOrder []string
	seenProvider := make(map[string]bool)
	for _, c := range campaigns {
		if !seenProvider[c.Provider] {
			seenProvider[c.Provider] = true
			providerOrder = append(providerOrder, c.Provider)
		}
		for _, u := range c.Likers {
			m, ok := providerSets[u]
			if !ok {
				m = make(map[string]bool, 1)
				providerSets[u] = m
			}
			m[c.Provider] = true
		}
	}
	ga := &GroupAssignment{
		ByUser: make(map[socialnet.UserID]string, len(providerSets)),
		Groups: make(map[string][]socialnet.UserID),
	}
	users := make([]socialnet.UserID, 0, len(providerSets))
	for u := range providerSets {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, u := range users {
		provs := providerSets[u]
		var label string
		if provs[alProvider] && provs[msProvider] {
			label = ALMSGroup
		} else {
			// Deterministic pick: first provider in campaign order that
			// this user liked. Cross-provider multi-likers outside the
			// AL/MS pair are rare; the paper notes a few users liked
			// pages in multiple campaigns.
			for _, p := range providerOrder {
				if provs[p] {
					label = p
					break
				}
			}
		}
		ga.ByUser[u] = label
		ga.Groups[label] = append(ga.Groups[label], u)
	}
	for _, p := range providerOrder {
		if len(ga.Groups[p]) > 0 {
			ga.Order = append(ga.Order, p)
		}
	}
	if len(ga.Groups[ALMSGroup]) > 0 {
		ga.Order = append(ga.Order, ALMSGroup)
	}
	return ga
}

// SocialGraphTable computes Table 3. base is the full friendship graph
// snapshot (mutual friends for 2-hop relations may be any user, liker or
// not).
func SocialGraphTable(st *socialnet.Store, ga *GroupAssignment, base *graph.Undirected) ([]ProviderGroupRow, error) {
	// All likers across groups.
	var allLikers []socialnet.UserID
	for _, us := range ga.Groups {
		allLikers = append(allLikers, us...)
	}
	sort.Slice(allLikers, func(i, j int) bool { return allLikers[i] < allLikers[j] })

	ids := make([]int64, len(allLikers))
	for i, u := range allLikers {
		ids[i] = int64(u)
	}
	direct := base.InducedSubgraph(ids)
	twoHop := graph.TwoHopClosure(ids, base)

	countInvolving := func(g *graph.Undirected, group string) int {
		n := 0
		for _, e := range g.Edges() {
			ga1 := ga.ByUser[socialnet.UserID(e[0])]
			ga2 := ga.ByUser[socialnet.UserID(e[1])]
			if ga1 == group || ga2 == group {
				n++
			}
		}
		return n
	}

	var rows []ProviderGroupRow
	for _, label := range ga.Order {
		members := ga.Groups[label]
		row := ProviderGroupRow{Provider: label, Likers: len(members)}
		var friendCounts []float64
		for _, u := range members {
			if !st.FriendsVisible(u) {
				continue
			}
			row.PublicFriendLists++
			friendCounts = append(friendCounts, float64(st.DeclaredFriendCount(u)))
		}
		if row.Likers > 0 {
			row.PublicPct = 100 * float64(row.PublicFriendLists) / float64(row.Likers)
		}
		if len(friendCounts) > 0 {
			mean, std, err := stats.MeanStd(friendCounts)
			if err != nil {
				return nil, fmt.Errorf("analysis: social graph: %w", err)
			}
			med, err := stats.Median(friendCounts)
			if err != nil {
				return nil, fmt.Errorf("analysis: social graph: %w", err)
			}
			row.AvgFriends, row.StdFriends, row.MedianFriends = mean, std, med
		}
		row.DirectFriendships = countInvolving(direct, label)
		row.TwoHopRelations = countInvolving(twoHop, label)
		rows = append(rows, row)
	}
	return rows, nil
}

// LikerGraphs returns the direct liker friendship graph and its 2-hop
// closure (Figure 3(a) and 3(b)).
func LikerGraphs(ga *GroupAssignment, base *graph.Undirected) (direct, twoHop *graph.Undirected) {
	var ids []int64
	for _, us := range ga.Groups {
		for _, u := range us {
			ids = append(ids, int64(u))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return base.InducedSubgraph(ids), graph.TwoHopClosure(ids, base)
}

// ComponentCensus summarizes a liker graph for the Figure 3 discussion:
// how many isolated nodes, pairs, triplets, and larger components each
// provider group contributes, plus the largest component size.
type ComponentCensus struct {
	Provider   string
	Isolated   int
	Pairs      int
	Triplets   int
	Larger     int
	LargestCmp int
}

// CensusByProvider classifies each provider group's members' components
// within the given liker graph. A component is attributed to a provider
// if the majority of its nodes belong to that provider (ties: first in
// group order).
func CensusByProvider(ga *GroupAssignment, g *graph.Undirected) []ComponentCensus {
	rows := make(map[string]*ComponentCensus)
	for _, label := range ga.Order {
		rows[label] = &ComponentCensus{Provider: label}
	}
	for _, comp := range g.ConnectedComponents() {
		counts := make(map[string]int)
		for _, n := range comp {
			counts[ga.ByUser[socialnet.UserID(n)]]++
		}
		best, bestN := "", -1
		for _, label := range ga.Order {
			if counts[label] > bestN {
				best, bestN = label, counts[label]
			}
		}
		row, ok := rows[best]
		if !ok {
			row = &ComponentCensus{Provider: best}
			rows[best] = row
		}
		switch len(comp) {
		case 1:
			row.Isolated++
		case 2:
			row.Pairs++
		case 3:
			row.Triplets++
		default:
			row.Larger++
		}
		if len(comp) > row.LargestCmp {
			row.LargestCmp = len(comp)
		}
	}
	var out []ComponentCensus
	for _, label := range ga.Order {
		out = append(out, *rows[label])
	}
	return out
}

// CrossProviderEdges counts direct liker-liker edges whose endpoints
// belong to different provider groups — the AL↔MS ties that flagged the
// shared operator.
func CrossProviderEdges(ga *GroupAssignment, g *graph.Undirected) map[[2]string]int {
	out := make(map[[2]string]int)
	for _, e := range g.Edges() {
		a := ga.ByUser[socialnet.UserID(e[0])]
		b := ga.ByUser[socialnet.UserID(e[1])]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		out[[2]string{a, b}]++
	}
	return out
}
