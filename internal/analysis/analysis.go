// Package analysis implements the paper's §4 comparative analyses over
// monitored honeypot campaigns: liker geolocation (Figure 1), gender/age
// demographics with KL divergence against the global network (Table 2),
// temporal like-delivery series (Figure 2), the liker social graph with
// direct and 2-hop relations (Table 3, Figure 3), page-like count
// distributions against an organic baseline (Figure 4), and pairwise
// Jaccard similarity of campaigns' page sets and liker sets (Figure 5).
//
// The analyses consume only the observables the paper's authors had:
// page like streams, the page-admin aggregate reports, public friend
// lists, and public page-like lists.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/socialnet"
	"repro/internal/stats"
)

// Campaign is one promoted honeypot page as seen by the analysis layer.
type Campaign struct {
	// ID is the paper's campaign label, e.g. "FB-USA" or "SF-ALL".
	ID string
	// Provider is the promotion channel, e.g. "Facebook.com".
	Provider string
	// Page is the honeypot page.
	Page socialnet.PageID
	// Likers are the observed likers in first-seen order.
	Likers []socialnet.UserID
	// Active is false for paid-but-never-delivered campaigns (BL-ALL,
	// MS-ALL); they appear in tables as dashes and in matrices as zero
	// rows.
	Active bool
}

// ProviderFacebook is the provider label for ad campaigns.
const ProviderFacebook = "Facebook.com"

// ALMSGroup is the synthetic provider group for likers shared between
// AuthenticLikes and MammothSocials campaigns (§4.3).
const ALMSGroup = "ALMS"

// GeoRow is one campaign's liker-country breakdown (Figure 1).
type GeoRow struct {
	CampaignID string
	// Percent maps the study countries (plus "Other") to percentages.
	Percent map[string]float64
	Total   int
}

// knownCountries returns the study-country membership set used to fold
// everything else into "Other".
func knownCountries() map[string]bool {
	known := make(map[string]bool)
	for _, c := range socialnet.StudyCountries() {
		known[c] = true
	}
	return known
}

// geoRowFrom normalizes accumulated per-country liker counts into a
// Figure 1 row. It builds a fresh percentage map rather than scaling
// counts in place: aggregator Finalize must not destroy observe-state,
// because the crawl checkpoint may snapshot that state after a
// finalize (e.g. tables written, then the final checkpoint) and a
// resume would otherwise re-normalize percentages as if they were
// counts.
func geoRowFrom(id string, counts map[string]float64, total int) GeoRow {
	pct := make(map[string]float64, len(counts))
	for k, v := range counts {
		pct[k] = v
	}
	if total > 0 {
		for k := range pct {
			pct[k] = 100 * pct[k] / float64(total)
		}
	}
	return GeoRow{CampaignID: id, Percent: pct, Total: total}
}

// LocationBreakdown computes Figure 1: per campaign, the percentage of
// likers per country, with non-study countries folded into "Other".
func LocationBreakdown(st *socialnet.Store, campaigns []Campaign) ([]GeoRow, error) {
	known := knownCountries()
	var out []GeoRow
	for _, c := range campaigns {
		if !c.Active {
			continue
		}
		counts := make(map[string]float64)
		total := 0
		for _, uid := range c.Likers {
			u, err := st.User(uid)
			if err != nil {
				return nil, fmt.Errorf("analysis: geolocation: %w", err)
			}
			label := u.Country
			if !known[label] {
				label = socialnet.CountryOther
			}
			counts[label]++
			total++
		}
		out = append(out, geoRowFrom(c.ID, counts, total))
	}
	return out, nil
}

// DemoRow is one campaign's Table 2 row.
type DemoRow struct {
	CampaignID string
	FemalePct  float64
	MalePct    float64
	// AgePct is the age distribution (percent) in Table 2 bracket order.
	AgePct [6]float64
	// KL is the divergence (bits) of the age distribution from the
	// global Facebook age distribution.
	KL float64
	N  int
}

// demoTally accumulates one campaign's gender/age counts; demoRowFrom
// turns the tally into a Table 2 row. Shared between the batch scan and
// the streaming aggregator.
type demoTally struct {
	ageCounts [6]float64
	nf, nm, n int
}

func (t *demoTally) observe(u socialnet.User) {
	switch u.Gender {
	case socialnet.GenderFemale:
		t.nf++
	case socialnet.GenderMale:
		t.nm++
	}
	if int(u.Age) < len(t.ageCounts) {
		t.ageCounts[u.Age]++
	}
	t.n++
}

func demoRowFrom(id string, t demoTally) (DemoRow, error) {
	row := DemoRow{CampaignID: id, N: t.n}
	if t.nf+t.nm > 0 {
		row.FemalePct = 100 * float64(t.nf) / float64(t.nf+t.nm)
		row.MalePct = 100 * float64(t.nm) / float64(t.nf+t.nm)
	}
	total := 0.0
	for _, v := range t.ageCounts {
		total += v
	}
	if total > 0 {
		for i, v := range t.ageCounts {
			row.AgePct[i] = 100 * v / total
		}
		kl, err := stats.KLDivergence(t.ageCounts[:], socialnet.GlobalAgeDistribution())
		if err != nil {
			return DemoRow{}, fmt.Errorf("analysis: demographics KL: %w", err)
		}
		row.KL = kl
	}
	return row, nil
}

// Demographics computes Table 2 for the active campaigns.
func Demographics(st *socialnet.Store, campaigns []Campaign) ([]DemoRow, error) {
	var out []DemoRow
	for _, c := range campaigns {
		if !c.Active {
			continue
		}
		var tally demoTally
		for _, uid := range c.Likers {
			u, err := st.User(uid)
			if err != nil {
				return nil, fmt.Errorf("analysis: demographics: %w", err)
			}
			tally.observe(u)
		}
		row, err := demoRowFrom(c.ID, tally)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// GlobalDemoRow returns the reference row (last row of Table 2).
func GlobalDemoRow() DemoRow {
	p := socialnet.GlobalFacebookProfile()
	row := DemoRow{CampaignID: "Facebook", FemalePct: 46, MalePct: 54}
	fr := p.AgeFractions()
	for i, v := range fr {
		row.AgePct[i] = 100 * v
	}
	return row
}

// SortCampaigns orders campaigns in the paper's roster order given the
// roster IDs; campaigns not in the roster go last alphabetically.
func SortCampaigns(campaigns []Campaign, rosterOrder []string) []Campaign {
	rank := make(map[string]int, len(rosterOrder))
	for i, id := range rosterOrder {
		rank[id] = i
	}
	out := append([]Campaign(nil), campaigns...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return out[i].ID < out[j].ID
		}
	})
	return out
}
