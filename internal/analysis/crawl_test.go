package analysis

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/socialnet"
)

// crawlFixture builds a two-campaign roster (plus one inactive) and a
// set of profiles with the AL/MS-style shared likers.
func crawlFixture() (campaigns []CrawlCampaign, profiles []CrawlProfile, likes []struct {
	Page socialnet.PageID
	User socialnet.UserID
	At   time.Time
}) {
	campaigns = []CrawlCampaign{
		{ID: "A", Page: 100, Active: true},
		{ID: "B", Page: 101, Active: true},
		{ID: "DEAD", Page: 102, Active: false},
	}
	base := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 12; i++ {
		p := CrawlProfile{
			User:    socialnet.UserID(i),
			Gender:  socialnet.GenderFemale,
			Age:     socialnet.Age18to24,
			Country: "USA",
			// Everyone likes A and two cover pages; every third liker
			// also likes B (the shared-liker overlap).
			PageLikes: []socialnet.PageID{100, socialnet.PageID(200 + i), socialnet.PageID(300 + i%4)},
		}
		if i%2 == 0 {
			p.Gender = socialnet.GenderMale
			p.Age = socialnet.Age25to34
			p.Country = "India"
		}
		likes = append(likes, struct {
			Page socialnet.PageID
			User socialnet.UserID
			At   time.Time
		}{100, p.User, base.Add(time.Duration(i) * time.Minute)})
		if i%3 == 0 {
			p.PageLikes = append(p.PageLikes, 101)
			likes = append(likes, struct {
				Page socialnet.PageID
				User socialnet.UserID
				At   time.Time
			}{101, p.User, base.Add(time.Duration(i)*time.Minute + 30*time.Second)})
		}
		profiles = append(profiles, p)
	}
	return campaigns, profiles, likes
}

// runAnalyzer folds the fixture into a fresh analyzer, optionally
// snapshotting at snapAt observations and resuming into a second
// analyzer (snapAt < 0 runs uninterrupted).
func runAnalyzer(t *testing.T, snapAt int) CrawlTables {
	t.Helper()
	campaigns, profiles, likes := crawlFixture()
	a := NewCrawlAnalyzer(campaigns, []socialnet.UserID{3, 7})
	feedProfile := func(an *CrawlAnalyzer, p CrawlProfile) {
		for _, agg := range an.Aggregators() {
			agg.ObserveProfile(p)
		}
	}
	feedLike := func(an *CrawlAnalyzer, pg socialnet.PageID, u socialnet.UserID, at time.Time) {
		for _, agg := range an.Aggregators() {
			agg.ObserveLike(pg, u, at)
		}
	}
	seen := 0
	for _, lk := range likes {
		feedLike(a, lk.Page, lk.User, lk.At)
	}
	for i, p := range profiles {
		if snapAt >= 0 && seen == snapAt {
			// Snapshot every aggregator, restore into a fresh family,
			// and continue there — the checkpoint/resume boundary.
			b := NewCrawlAnalyzer(campaigns, []socialnet.UserID{3, 7})
			for j, agg := range a.Aggregators() {
				st, err := agg.State()
				if err != nil {
					t.Fatal(err)
				}
				if err := b.Aggregators()[j].Restore(st); err != nil {
					t.Fatal(err)
				}
			}
			a = b
		}
		seen++
		_ = i
		feedProfile(a, p)
	}
	tables, err := a.Tables()
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

// TestCrawlAggregatorsAttributeSharedLikers: a profile liking two
// campaign pages counts toward both campaigns, even though the
// pipeline emits each profile exactly once.
func TestCrawlAggregatorsAttributeSharedLikers(t *testing.T) {
	tables := runAnalyzer(t, -1)
	if len(tables.Geo) != 2 {
		t.Fatalf("geo rows = %d, want 2 (inactive campaign skipped)", len(tables.Geo))
	}
	if tables.Geo[0].Total != 12 {
		t.Fatalf("campaign A total = %d, want 12", tables.Geo[0].Total)
	}
	if tables.Geo[1].Total != 4 {
		t.Fatalf("campaign B total = %d, want 4 (users 0,3,6,9)", tables.Geo[1].Total)
	}
	if tables.Demo[1].N != 4 {
		t.Fatalf("campaign B demo N = %d, want 4", tables.Demo[1].N)
	}
	// Windows cover all three campaigns, the inactive one empty.
	if len(tables.Windows) != 3 || tables.Windows[2].Total != 0 {
		t.Fatalf("windows = %+v, want 3 rows with empty DEAD", tables.Windows)
	}
	if tables.Windows[0].Total != 12 || tables.Windows[1].Total != 4 {
		t.Fatalf("window totals = %d/%d, want 12/4", tables.Windows[0].Total, tables.Windows[1].Total)
	}
	// CDF rows: A, B, Facebook (baseline users 3 and 7 were observed
	// as campaign likers, so their counts exist).
	if len(tables.CDFs) != 3 || tables.CDFs[2].CampaignID != "Facebook" {
		t.Fatalf("CDF rows = %+v, want A, B, Facebook", tables.CDFs)
	}
	if n := tables.CDFs[2].N; n != 2 {
		t.Fatalf("baseline N = %d, want 2", n)
	}
	// Jaccard: inactive row is zero, diagonal 100 for active.
	if tables.PageSim[2][2] != 0 || tables.PageSim[0][0] != 100 {
		t.Fatalf("pageSim diagonal = %v", tables.PageSim)
	}
	if tables.UserSim[0][1] == 0 {
		t.Fatal("shared likers produced zero user similarity")
	}
}

// TestCrawlAggregatorStateRoundTrip: snapshotting mid-stream and
// resuming into a fresh aggregator family yields byte-identical tables
// for every split point — the property that lets aggregator state ride
// the crawl checkpoint.
func TestCrawlAggregatorStateRoundTrip(t *testing.T) {
	want, err := mustTables(runAnalyzer(t, -1))
	if err != nil {
		t.Fatal(err)
	}
	for snapAt := 0; snapAt <= 12; snapAt++ {
		got, err := mustTables(runAnalyzer(t, snapAt))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("split at %d diverges:\n%s\nvs\n%s", snapAt, got, want)
		}
	}
}

func mustTables(t CrawlTables) ([]byte, error) { return t.MarshalStable() }

// TestCrawlAggregatorRestoreRejectsMismatch: state from a different
// roster size is refused rather than silently misapplied.
func TestCrawlAggregatorRestoreRejectsMismatch(t *testing.T) {
	campaigns, _, _ := crawlFixture()
	a := NewCrawlAnalyzer(campaigns, nil)
	small := NewCrawlAnalyzer(campaigns[:1], nil)
	for i, agg := range a.Aggregators() {
		st, err := agg.State()
		if err != nil {
			t.Fatal(err)
		}
		if err := small.Aggregators()[i].Restore(st); err == nil {
			t.Fatalf("aggregator %d accepted state for a different roster", i)
		}
	}
}

// TestCrawlStateSurvivesFinalize: Finalize must not destroy
// observe-state — the crawl writes its FINAL checkpoint after tables
// may already have been produced, and a resume from that checkpoint
// re-finalizes. (Regression: geoRowFrom used to normalize the counts
// map in place, so a post-finalize snapshot held percentages that a
// resumed finalize re-normalized.)
func TestCrawlStateSurvivesFinalize(t *testing.T) {
	campaigns, profiles, likes := crawlFixture()
	a := NewCrawlAnalyzer(campaigns, nil)
	for _, lk := range likes {
		for _, agg := range a.Aggregators() {
			agg.ObserveLike(lk.Page, lk.User, lk.At)
		}
	}
	for _, p := range profiles {
		for _, agg := range a.Aggregators() {
			agg.ObserveProfile(p)
		}
	}
	first, err := a.Tables()
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot AFTER finalize, restore, finalize again.
	b := NewCrawlAnalyzer(campaigns, nil)
	for i, agg := range a.Aggregators() {
		st, err := agg.State()
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Aggregators()[i].Restore(st); err != nil {
			t.Fatal(err)
		}
	}
	second, err := b.Tables()
	if err != nil {
		t.Fatal(err)
	}
	got, err := second.MarshalStable()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-finalize snapshot diverges:\n%s\nvs\n%s", got, want)
	}
}
