package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/socialnet"
)

// DOTOptions configures Graphviz export of the liker graphs (the
// paper's Figure 3 renders them as drawings; this emits the same graphs
// for dot/neato).
type DOTOptions struct {
	// Name is the graph name in the DOT header.
	Name string
	// IncludeIsolated keeps zero-degree likers (the paper's figures
	// exclude them).
	IncludeIsolated bool
	// MaxNodes caps output size (0 = no cap); nodes are dropped from
	// the smallest components first.
	MaxNodes int
}

// providerColors assigns stable Graphviz colors per provider group.
var providerColors = []string{
	"steelblue", "firebrick", "forestgreen", "darkorange", "purple",
	"goldenrod", "turquoise", "deeppink",
}

// LikerGraphDOT renders a liker friendship graph as Graphviz DOT, with
// nodes colored by provider group, reproducing Figure 3's visual
// grouping.
func LikerGraphDOT(g *graph.Undirected, ga *GroupAssignment, opt DOTOptions) string {
	name := opt.Name
	if name == "" {
		name = "likers"
	}
	colorOf := make(map[string]string, len(ga.Order))
	for i, label := range ga.Order {
		colorOf[label] = providerColors[i%len(providerColors)]
	}

	nodes := g.Nodes()
	if !opt.IncludeIsolated {
		kept := nodes[:0]
		for _, n := range nodes {
			if g.Degree(n) > 0 {
				kept = append(kept, n)
			}
		}
		nodes = kept
	}
	if opt.MaxNodes > 0 && len(nodes) > opt.MaxNodes {
		// Keep the largest components first.
		comps := g.ConnectedComponents()
		var keep []int64
		for _, comp := range comps {
			if !opt.IncludeIsolated && len(comp) == 1 {
				continue
			}
			if len(keep)+len(comp) > opt.MaxNodes {
				break
			}
			keep = append(keep, comp...)
		}
		nodes = keep
	}
	inSet := make(map[int64]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	b.WriteString("  node [shape=point width=0.12];\n")
	b.WriteString("  edge [color=gray60];\n")
	for _, n := range nodes {
		label := ga.ByUser[socialnet.UserID(n)]
		color := colorOf[label]
		if color == "" {
			color = "gray"
		}
		fmt.Fprintf(&b, "  n%d [color=%q tooltip=%q];\n", n, color, label)
	}
	for _, e := range g.Edges() {
		if inSet[e[0]] && inSet[e[1]] {
			fmt.Fprintf(&b, "  n%d -- n%d;\n", e[0], e[1])
		}
	}
	b.WriteString("  // legend\n")
	for _, label := range ga.Order {
		fmt.Fprintf(&b, "  // %s: %s\n", colorOf[label], label)
	}
	b.WriteString("}\n")
	return b.String()
}
