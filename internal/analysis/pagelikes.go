package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/socialnet"
	"repro/internal/stats"
)

// PageLikeCDF is one campaign's distribution of per-liker page-like
// counts (Figure 4), as an ECDF plus summary quantiles.
type PageLikeCDF struct {
	CampaignID string
	N          int
	Median     float64
	P90        float64
	Max        float64
	ECDF       *stats.ECDF
}

// newPageLikeCDF assembles one Figure 4 row from per-user page-like
// counts. Shared between the batch scan and the streaming aggregator.
func newPageLikeCDF(id string, counts []float64) (PageLikeCDF, error) {
	e, err := stats.NewECDF(counts)
	if err != nil {
		return PageLikeCDF{}, fmt.Errorf("analysis: page-like CDF %s: %w", id, err)
	}
	med, err := stats.Median(counts)
	if err != nil {
		return PageLikeCDF{}, err
	}
	p90, err := stats.Quantile(counts, 0.9)
	if err != nil {
		return PageLikeCDF{}, err
	}
	_, max, err := stats.MinMax(counts)
	if err != nil {
		return PageLikeCDF{}, err
	}
	return PageLikeCDF{
		CampaignID: id, N: len(counts),
		Median: med, P90: p90, Max: max, ECDF: e,
	}, nil
}

// PageLikeCDFs computes Figure 4 for the active campaigns, plus the
// baseline sample labelled "Facebook" when baseline is non-empty.
func PageLikeCDFs(st *socialnet.Store, campaigns []Campaign, baseline []socialnet.UserID) ([]PageLikeCDF, error) {
	var out []PageLikeCDF
	build := func(id string, users []socialnet.UserID) error {
		if len(users) == 0 {
			return nil
		}
		counts := make([]float64, len(users))
		for i, u := range users {
			counts[i] = float64(st.LikeCountOfUser(u))
		}
		row, err := newPageLikeCDF(id, counts)
		if err != nil {
			return err
		}
		out = append(out, row)
		return nil
	}
	for _, c := range campaigns {
		if !c.Active {
			continue
		}
		if err := build(c.ID, c.Likers); err != nil {
			return nil, err
		}
	}
	if len(baseline) > 0 {
		if err := build("Facebook", baseline); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BaselineSample draws n users uniformly from the public directory — the
// unbiased Facebook-population sample of Figure 4 (the paper used 2000
// profiles from the searchable-ID directory crawl of [9]).
func BaselineSample(r *rand.Rand, st *socialnet.Store, n int) ([]socialnet.UserID, error) {
	dir := st.Directory()
	if n < 1 {
		return nil, fmt.Errorf("analysis: baseline size %d must be >=1", n)
	}
	if n > len(dir) {
		return nil, fmt.Errorf("analysis: baseline size %d exceeds directory %d", n, len(dir))
	}
	idx, err := stats.SampleWithoutReplacement(r, len(dir), n)
	if err != nil {
		return nil, err
	}
	sort.Ints(idx)
	out := make([]socialnet.UserID, n)
	for i, j := range idx {
		out[i] = dir[j]
	}
	return out, nil
}

// JaccardMatrices computes Figure 5: the pairwise Jaccard similarity of
// campaigns' page-like unions (a) and liker sets (b), scaled by 100 as
// in the paper's heatmaps. Inactive campaigns contribute empty sets (zero
// rows/columns). The matrix is indexed by the campaigns slice order.
func JaccardMatrices(st *socialnet.Store, campaigns []Campaign) (pageSim, userSim [][]float64, err error) {
	n := len(campaigns)
	pageSets := make([]map[socialnet.PageID]struct{}, n)
	userSets := make([]map[socialnet.UserID]struct{}, n)
	for i, c := range campaigns {
		pageSets[i] = make(map[socialnet.PageID]struct{})
		userSets[i] = make(map[socialnet.UserID]struct{})
		if !c.Active {
			continue
		}
		for _, u := range c.Likers {
			userSets[i][u] = struct{}{}
			for _, lk := range st.LikesOfUser(u) {
				if lk.Page == c.Page {
					continue // exclude the honeypot page itself
				}
				pageSets[i][lk.Page] = struct{}{}
			}
		}
	}
	pageSim, userSim = jaccardFromSets(campaigns, pageSets, userSets)
	return pageSim, userSim, nil
}

// jaccardFromSets turns per-campaign page and liker sets into the
// Figure 5 similarity matrices.
func jaccardFromSets(campaigns []Campaign, pageSets []map[socialnet.PageID]struct{}, userSets []map[socialnet.UserID]struct{}) (pageSim, userSim [][]float64) {
	return similarityMatrices(campaigns,
		func(a, b int) float64 { return 100 * stats.Jaccard(pageSets[a], pageSets[b]) },
		func(a, b int) float64 { return 100 * stats.Jaccard(userSets[a], userSets[b]) })
}

// similarityMatrices assembles the Figure 5 matrix shape — diagonal
// 100 for active campaigns, 0 rows for inactive ones, symmetric
// off-diagonal entries from the pairwise callbacks — shared between
// the batch scan (map sets) and the streaming aggregator (dense
// bitmaps), so the encoding of the matrix rules cannot diverge.
func similarityMatrices(campaigns []Campaign, pageSim, userSim func(a, b int) float64) (ps, us [][]float64) {
	n := len(campaigns)
	ps = make([][]float64, n)
	us = make([][]float64, n)
	for i := 0; i < n; i++ {
		ps[i] = make([]float64, n)
		us[i] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		if campaigns[a].Active {
			ps[a][a] = 100
			us[a][a] = 100
		}
		for b := a + 1; b < n; b++ {
			p, u := pageSim(a, b), userSim(a, b)
			ps[a][b], ps[b][a] = p, p
			us[a][b], us[b][a] = u, u
		}
	}
	return ps, us
}
