package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/socialnet"
	"repro/internal/stats"
)

// PageLikeCDF is one campaign's distribution of per-liker page-like
// counts (Figure 4), as an ECDF plus summary quantiles.
type PageLikeCDF struct {
	CampaignID string
	N          int
	Median     float64
	P90        float64
	Max        float64
	ECDF       *stats.ECDF
}

// PageLikeCDFs computes Figure 4 for the active campaigns, plus the
// baseline sample labelled "Facebook" when baseline is non-empty.
func PageLikeCDFs(st *socialnet.Store, campaigns []Campaign, baseline []socialnet.UserID) ([]PageLikeCDF, error) {
	var out []PageLikeCDF
	build := func(id string, users []socialnet.UserID) error {
		if len(users) == 0 {
			return nil
		}
		counts := make([]float64, len(users))
		for i, u := range users {
			counts[i] = float64(st.LikeCountOfUser(u))
		}
		e, err := stats.NewECDF(counts)
		if err != nil {
			return fmt.Errorf("analysis: page-like CDF %s: %w", id, err)
		}
		med, err := stats.Median(counts)
		if err != nil {
			return err
		}
		p90, err := stats.Quantile(counts, 0.9)
		if err != nil {
			return err
		}
		_, max, err := stats.MinMax(counts)
		if err != nil {
			return err
		}
		out = append(out, PageLikeCDF{
			CampaignID: id, N: len(users),
			Median: med, P90: p90, Max: max, ECDF: e,
		})
		return nil
	}
	for _, c := range campaigns {
		if !c.Active {
			continue
		}
		if err := build(c.ID, c.Likers); err != nil {
			return nil, err
		}
	}
	if len(baseline) > 0 {
		if err := build("Facebook", baseline); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BaselineSample draws n users uniformly from the public directory — the
// unbiased Facebook-population sample of Figure 4 (the paper used 2000
// profiles from the searchable-ID directory crawl of [9]).
func BaselineSample(r *rand.Rand, st *socialnet.Store, n int) ([]socialnet.UserID, error) {
	dir := st.Directory()
	if n < 1 {
		return nil, fmt.Errorf("analysis: baseline size %d must be >=1", n)
	}
	if n > len(dir) {
		return nil, fmt.Errorf("analysis: baseline size %d exceeds directory %d", n, len(dir))
	}
	idx, err := stats.SampleWithoutReplacement(r, len(dir), n)
	if err != nil {
		return nil, err
	}
	sort.Ints(idx)
	out := make([]socialnet.UserID, n)
	for i, j := range idx {
		out[i] = dir[j]
	}
	return out, nil
}

// JaccardMatrices computes Figure 5: the pairwise Jaccard similarity of
// campaigns' page-like unions (a) and liker sets (b), scaled by 100 as
// in the paper's heatmaps. Inactive campaigns contribute empty sets (zero
// rows/columns). The matrix is indexed by the campaigns slice order.
func JaccardMatrices(st *socialnet.Store, campaigns []Campaign) (pageSim, userSim [][]float64, err error) {
	n := len(campaigns)
	pageSets := make([]map[socialnet.PageID]struct{}, n)
	userSets := make([]map[socialnet.UserID]struct{}, n)
	for i, c := range campaigns {
		pageSets[i] = make(map[socialnet.PageID]struct{})
		userSets[i] = make(map[socialnet.UserID]struct{})
		if !c.Active {
			continue
		}
		for _, u := range c.Likers {
			userSets[i][u] = struct{}{}
			for _, lk := range st.LikesOfUser(u) {
				if lk.Page == c.Page {
					continue // exclude the honeypot page itself
				}
				pageSets[i][lk.Page] = struct{}{}
			}
		}
	}
	pageSim = make([][]float64, n)
	userSim = make([][]float64, n)
	for i := 0; i < n; i++ {
		pageSim[i] = make([]float64, n)
		userSim[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				if campaigns[i].Active {
					pageSim[i][j] = 100
					userSim[i][j] = 100
				}
				continue
			}
			pageSim[i][j] = 100 * stats.Jaccard(pageSets[i], pageSets[j])
			userSim[i][j] = 100 * stats.Jaccard(userSets[i], userSets[j])
		}
	}
	return pageSim, userSim, nil
}
