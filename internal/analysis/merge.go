package analysis

import (
	"fmt"

	"repro/internal/socialnet"
)

// Sharded-crawl merge (DESIGN §15): a campaign roster split across N
// crawler processes by page hash produces N sink snapshots, and
// MergeState folds each one into a fresh aggregator built over the
// FULL roster. The merge is exact — byte-identical tables to a
// single-process crawl — because of the ownership discipline the
// sharded crawl enforces: each shard marks only its OWNED campaigns
// active, so every campaign's contributions come from exactly one
// shard, and a profile crawled by two shards (a user liking pages in
// both) is never double-counted per campaign. Under that discipline
// every fold below is a plain disjoint sum or a consistent union:
//
//   - Geo/Demo: per-campaign scalar sums — disjoint across shards.
//   - Window: per-campaign time series concatenation (Finalize sorts).
//   - CDF: member lists concatenate disjointly; the counts map unions
//     (a user's page-like count is the same full crawled list no
//     matter which shard observed the profile, unless the profile
//     drifted between the shards' crawls — resolved deterministically
//     to the larger count, counted via MergeConflicts).
//   - Jaccard: per-campaign page/user set unions — disjoint across
//     shards.
//
// A merged analyzer must be built with the TRUE active flags and the
// full baseline sample, which the shard exports carry alongside their
// sink state (crawler.ShardExport).

// CrawlMerger is the merge hook a CrawlAggregator implements: fold a
// peer aggregator's serialized State into this one. All standard §4
// crawl aggregators implement it.
type CrawlMerger interface {
	MergeState(data []byte) error
}

// MergeState implements CrawlMerger: per-campaign country tallies and
// totals add. The peer state is validated in full BEFORE any fold: a
// mid-merge error must not leave the target half-merged, because the
// caller's aggregator state is the accumulated result of an entire
// crawl.
func (g *CrawlGeoAggregator) MergeState(data []byte) error {
	peer := NewCrawlGeoAggregator(g.campaigns)
	if err := peer.Restore(data); err != nil {
		return err
	}
	for i := range g.campaigns {
		if g.counts[i] == nil && (len(peer.counts[i]) > 0 || peer.totals[i] > 0) {
			return fmt.Errorf("analysis: merge geo: shard state has data for inactive campaign %q", g.campaigns[i].ID)
		}
	}
	for i := range g.campaigns {
		for label, n := range peer.counts[i] {
			g.counts[i][label] += n
		}
		g.totals[i] += peer.totals[i]
	}
	return nil
}

// MergeState implements CrawlMerger: per-campaign demographic tallies
// add fieldwise.
func (d *CrawlDemoAggregator) MergeState(data []byte) error {
	peer := NewCrawlDemoAggregator(d.campaigns)
	if err := peer.Restore(data); err != nil {
		return err
	}
	for i := range d.tallies {
		t, p := &d.tallies[i], &peer.tallies[i]
		for j := range t.Age {
			t.Age[j] += p.Age[j]
		}
		t.NF += p.NF
		t.NM += p.NM
		t.N += p.N
	}
	return nil
}

// MergeState implements CrawlMerger: per-campaign like-time series
// concatenate; Finalize sorts, so concatenation order never reaches
// the output.
func (w *CrawlWindowAggregator) MergeState(data []byte) error {
	peer := NewCrawlWindowAggregator(w.campaigns)
	if err := peer.Restore(data); err != nil {
		return err
	}
	for i := range w.times {
		w.times[i] = append(w.times[i], peer.times[i]...)
	}
	return nil
}

// MergeState implements CrawlMerger: member lists concatenate (disjoint
// under campaign ownership), the per-user page-like counts union.
//
// Two shards CAN legitimately disagree on one user's page-like count:
// the shards crawl the same live world at different times, and a
// profile that gained likes between the two observations drifts. That
// is crawl-timing skew, not corruption, so the union resolves it
// deterministically — the larger count wins, independent of merge
// order — instead of aborting the merge of an entire multi-shard
// crawl. Resolved conflicts are counted and reported by
// MergeConflicts so callers can surface the drift; against a quiesced
// world the count is zero and merged tables stay byte-identical to a
// single-process crawl.
func (a *CrawlCDFAggregator) MergeState(data []byte) error {
	peer := NewCrawlCDFAggregator(a.campaigns, nil)
	if err := peer.Restore(data); err != nil {
		return err
	}
	for i := range a.members {
		a.members[i] = append(a.members[i], peer.members[i]...)
	}
	for u, n := range peer.counts {
		if have, ok := a.counts[u]; ok && have != n {
			a.conflicts++
			if have > n {
				continue
			}
		}
		a.counts[u] = n
	}
	return nil
}

// MergeConflicts reports how many per-user count conflicts MergeState
// resolved (one per user per conflicting shard pair) — nonzero means
// profiles changed between two shards' observations of them.
func (a *CrawlCDFAggregator) MergeConflicts() int { return a.conflicts }

// MergeState implements CrawlMerger: per-campaign page bitmaps and
// liker sets union.
func (j *CrawlJaccardAggregator) MergeState(data []byte) error {
	peer := NewCrawlJaccardAggregator(j.campaigns)
	if err := peer.Restore(data); err != nil {
		return err
	}
	for i := range j.campaigns {
		for pg, ok := range peer.pageSeen[i] {
			if !ok {
				continue
			}
			if pg >= len(j.pageSeen[i]) {
				grown := make([]bool, pg+1)
				copy(grown, j.pageSeen[i])
				j.pageSeen[i] = grown
			}
			j.pageSeen[i][pg] = true
		}
		for u := range peer.users[i] {
			j.users[i][u] = struct{}{}
		}
	}
	return nil
}

// ShardActive returns the roster with each campaign's Active flag
// masked to campaigns the given shard owns (ownership = owns(Page)).
// This is the merge contract's other half: a sharded crawl builds its
// analyzer over the full roster but activates only owned campaigns, so
// the per-campaign folds are disjoint across shards and the merged
// tables equal a single-process crawl's byte-for-byte.
func ShardActive(campaigns []CrawlCampaign, owns func(socialnet.PageID) bool) []CrawlCampaign {
	out := append([]CrawlCampaign(nil), campaigns...)
	for i := range out {
		if !owns(out[i].Page) {
			out[i].Active = false
		}
	}
	return out
}
