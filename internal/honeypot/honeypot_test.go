package honeypot

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/socialnet"
)

var t0 = time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)

func setup(t *testing.T) (*simclock.Clock, *socialnet.Store, socialnet.PageID) {
	t.Helper()
	clock := simclock.New(t0)
	st := socialnet.NewStore()
	page, owner, err := Deploy(st, "FB-USA", t0)
	if err != nil {
		t.Fatal(err)
	}
	if owner == 0 {
		t.Fatal("no owner account")
	}
	return clock, st, page
}

func addLiker(t *testing.T, st *socialnet.Store, page socialnet.PageID, at time.Time) socialnet.UserID {
	t.Helper()
	u := st.AddUser(socialnet.User{Country: "USA"})
	if err := st.AddLike(u, page, at); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestDeployCreatesHoneypotPage(t *testing.T) {
	_, st, page := setup(t)
	p, err := st.Page(page)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Honeypot {
		t.Fatal("page should be flagged honeypot")
	}
	if !strings.Contains(p.Name, PageName) || !strings.Contains(p.Name, "FB-USA") {
		t.Fatalf("page name = %q", p.Name)
	}
	if p.Description != PageDescription {
		t.Fatalf("description = %q", p.Description)
	}
	if p.Owner == 0 {
		t.Fatal("page should have an owner")
	}
}

func TestMonitorObservesLikes(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	// Schedule 3 likes over the first day.
	for i := 0; i < 3; i++ {
		i := i
		_, _ = clock.ScheduleAfter(time.Duration(3+i*5)*time.Hour, "like", func(cl *simclock.Clock) {
			addLiker(t, st, page, cl.Now())
		})
	}
	clock.RunFor(2 * 24 * time.Hour)
	if mon.TotalLikes() != 3 {
		t.Fatalf("observed %d likes, want 3", mon.TotalLikes())
	}
	if got := len(mon.Likers()); got != 3 {
		t.Fatalf("likers = %d", got)
	}
}

func TestMonitorPollCadence(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the page alive with a like each day.
	for d := 0; d < 5; d++ {
		d := d
		_, _ = clock.ScheduleAfter(time.Duration(d*24+1)*time.Hour, "like", func(cl *simclock.Clock) {
			addLiker(t, st, page, cl.Now())
		})
	}
	clock.RunFor(36 * time.Hour) // mid-campaign
	snaps := mon.Snapshots()
	// 2h cadence: 1 initial + 18 polls in 36h.
	if len(snaps) < 17 || len(snaps) > 20 {
		t.Fatalf("in-campaign snapshots = %d, want ~19", len(snaps))
	}
	pre := len(snaps)
	clock.RunFor(3 * 24 * time.Hour) // into the tail: daily polls
	post := len(mon.Snapshots())
	perDay := float64(post-pre) / 3
	if perDay > 7 {
		t.Fatalf("tail polling too frequent: %.1f snapshots/day", perDay)
	}
}

func TestMonitorStopsAfterQuietWeek(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	addLiker(t, st, page, t0.Add(time.Hour))
	clock.Drain(0)
	stopped, at := mon.Stopped()
	if !stopped {
		t.Fatal("monitor should stop after a quiet week")
	}
	// Campaign 3 days; last like day 0; quiet cutoff 7d -> stop ~day 8-10.
	days := at.Sub(t0).Hours() / 24
	if days < 7 || days > 11 {
		t.Fatalf("stopped at day %.1f, want ~8-10", days)
	}
	if mon.MonitoringDays(clock.Now()) < 8 {
		t.Fatalf("monitoring days = %d", mon.MonitoringDays(clock.Now()))
	}
}

func TestMonitorInactivePageStopsEarly(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	clock.Drain(0)
	stopped, at := mon.Stopped()
	if !stopped {
		t.Fatal("monitor should stop")
	}
	days := at.Sub(t0).Hours() / 24
	// No likes ever: stops right after the campaign's quiet week is
	// recognized in the tail (campaign 15d, lastNew = start -> stops
	// at first tail poll past day 15).
	if days < 15 || days > 17 {
		t.Fatalf("inactive page stopped at day %.1f", days)
	}
	if mon.TotalLikes() != 0 {
		t.Fatalf("likes = %d", mon.TotalLikes())
	}
}

func TestMonitorMaxDaysCap(t *testing.T) {
	clock, st, page := setup(t)
	cfg := DefaultMonitorConfig(5)
	cfg.MaxDays = 10
	mon, err := StartMonitor(clock, st, page, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A like every day forever would keep it alive without the cap.
	tk, err := clock.Every(24*time.Hour, "likes", func(cl *simclock.Clock) bool {
		addLiker(t, st, page, cl.Now())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.RunFor(30 * 24 * time.Hour)
	tk.Stop()
	stopped, at := mon.Stopped()
	if !stopped {
		t.Fatal("monitor should hit MaxDays")
	}
	if d := at.Sub(t0).Hours() / 24; d > 10.5 {
		t.Fatalf("stopped at day %.1f, cap 10", d)
	}
}

func TestFirstSeenOrder(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	var early, late socialnet.UserID
	_, _ = clock.ScheduleAfter(30*time.Hour, "late", func(cl *simclock.Clock) {
		late = addLiker(t, st, page, cl.Now())
	})
	_, _ = clock.ScheduleAfter(3*time.Hour, "early", func(cl *simclock.Clock) {
		early = addLiker(t, st, page, cl.Now())
	})
	clock.RunFor(3 * 24 * time.Hour)
	likers := mon.Likers()
	if len(likers) != 2 || likers[0] != early || likers[1] != late {
		t.Fatalf("likers = %v, want [%d %d]", likers, early, late)
	}
	ts, ok := mon.FirstSeen(early)
	if !ok {
		t.Fatal("FirstSeen(early) missing")
	}
	// First seen at the poll after the like (2h grid).
	if ts.Sub(t0) < 3*time.Hour || ts.Sub(t0) > 5*time.Hour {
		t.Fatalf("first seen at %v", ts.Sub(t0))
	}
	if _, ok := mon.FirstSeen(9999); ok {
		t.Fatal("unknown liker should not have FirstSeen")
	}
}

func TestCumulativeByDay(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	// 5 likes just after the day-1 boundary, 5 after the day-3 boundary.
	for i := 0; i < 5; i++ {
		i := i
		_, _ = clock.ScheduleAfter(24*time.Hour+time.Duration(i+1)*time.Minute, "d1", func(cl *simclock.Clock) {
			addLiker(t, st, page, cl.Now())
		})
		_, _ = clock.ScheduleAfter(3*24*time.Hour+time.Duration(i+1)*time.Minute, "d3", func(cl *simclock.Clock) {
			addLiker(t, st, page, cl.Now())
		})
	}
	clock.RunFor(6 * 24 * time.Hour)
	series := mon.CumulativeByDay(5)
	if len(series) != 6 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0] != 0 || series[1] != 0 {
		t.Fatalf("early series = %v", series)
	}
	if series[2] != 5 {
		t.Fatalf("day 2 = %d, want 5", series[2])
	}
	if series[5] != 10 {
		t.Fatalf("day 5 = %d, want 10", series[5])
	}
	// Monotone.
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatalf("series not monotone: %v", series)
		}
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	clock, st, page := setup(t)
	bad := []MonitorConfig{
		{CampaignDays: 0, ActiveInterval: time.Hour, TailInterval: time.Hour, QuietCutoff: time.Hour},
		{CampaignDays: 5, ActiveInterval: 0, TailInterval: time.Hour, QuietCutoff: time.Hour},
		{CampaignDays: 5, ActiveInterval: time.Hour, TailInterval: 0, QuietCutoff: time.Hour},
		{CampaignDays: 5, ActiveInterval: time.Hour, TailInterval: time.Hour, QuietCutoff: 0},
		{CampaignDays: 5, ActiveInterval: time.Hour, TailInterval: time.Hour, QuietCutoff: time.Hour, MaxDays: -1},
	}
	for i, cfg := range bad {
		if _, err := StartMonitor(clock, st, page, cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if _, err := StartMonitor(clock, st, 9999, DefaultMonitorConfig(5)); err == nil {
		t.Fatal("missing page accepted")
	}
}

// TestMonitorQuietCutoffExactBoundary pins the quiet-cutoff comparison:
// a gap of exactly QuietCutoff since the last new like does NOT stop the
// monitor (the rule is "more than a week without a new like"); the stop
// lands on the next tail poll after the cutoff is exceeded.
func TestMonitorQuietCutoffExactBoundary(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// One like at hour 23, observed by the tick at hour 24 -> lastNew=24h.
	_, _ = clock.ScheduleAfter(23*time.Hour, "like", func(cl *simclock.Clock) {
		addLiker(t, st, page, cl.Now())
	})
	clock.Drain(0)
	stopped, at := mon.Stopped()
	if !stopped {
		t.Fatal("monitor should stop eventually")
	}
	// Tail polls run daily from hour 48. The poll at hour 192 sees a gap
	// of exactly 7*24h — not yet "more than" the cutoff — so the stop
	// must land on the next daily poll, hour 216.
	if got := at.Sub(t0); got != 216*time.Hour {
		t.Fatalf("stopped after %v, want 216h (the poll after the exact 7-day gap)", got)
	}
}

// TestMonitorCadenceTransition pins the active->daily switch: 2-hour
// polls through the campaign, daily polls after, with the transition
// tick landing exactly on the campaign boundary.
func TestMonitorCadenceTransition(t *testing.T) {
	clock, st, page := setup(t)
	cfg := DefaultMonitorConfig(1) // 1-day campaign
	mon, err := StartMonitor(clock, st, page, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Keep it alive past the transition.
	_, _ = clock.ScheduleAfter(30*time.Hour, "like", func(cl *simclock.Clock) {
		addLiker(t, st, page, cl.Now())
	})
	clock.RunFor(4 * 24 * time.Hour)
	snaps := mon.Snapshots()
	// Initial observation + ticks at 2h..24h + daily at 48h, 72h, 96h.
	var want []time.Duration
	want = append(want, 0)
	for h := 2; h <= 24; h += 2 {
		want = append(want, time.Duration(h)*time.Hour)
	}
	for h := 48; h <= 96; h += 24 {
		want = append(want, time.Duration(h)*time.Hour)
	}
	if len(snaps) != len(want) {
		t.Fatalf("snapshots = %d, want %d", len(snaps), len(want))
	}
	for i, s := range snaps {
		if s.At.Sub(t0) != want[i] {
			t.Fatalf("snapshot %d at %v, want %v", i, s.At.Sub(t0), want[i])
		}
	}
}

// TestMonitorZeroLikeCampaignSummary covers the paid-but-never-delivered
// campaigns (BL-ALL, MS-ALL): the monitor runs its course, observes
// nothing, and the summary is all zeros with an untouched cursor.
func TestMonitorZeroLikeCampaignSummary(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	clock.Drain(0)
	sum := mon.Summarize(clock.Now(), 15)
	if len(sum.Likers) != 0 || sum.TotalLikes != 0 {
		t.Fatalf("zero-like summary = %+v", sum)
	}
	if sum.Events != 0 || sum.Cursor != 0 {
		t.Fatalf("journal stats = events %d cursor %d, want 0/0", sum.Events, sum.Cursor)
	}
	if len(sum.Series) != 16 {
		t.Fatalf("series length = %d", len(sum.Series))
	}
	for d, v := range sum.Series {
		if v != 0 {
			t.Fatalf("series[%d] = %d", d, v)
		}
	}
	if sum.MonitoringDays < 15 {
		t.Fatalf("monitoring days = %d", sum.MonitoringDays)
	}
}

// TestMonitorIncrementalMatchesRescan checks the cursor-based monitor
// against a full re-scan of the page stream at every poll instant: the
// cumulative series and the cursor high-water mark must agree with the
// store's own counts.
func TestMonitorIncrementalMatchesRescan(t *testing.T) {
	clock, st, page := setup(t)
	mon, err := StartMonitor(clock, st, page, DefaultMonitorConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// A messy delivery: bursts and trickles across the campaign.
	for i := 0; i < 40; i++ {
		i := i
		at := time.Duration(i%5)*24*time.Hour + time.Duration(i*37%1440)*time.Minute
		_, _ = clock.ScheduleAfter(at, "like", func(cl *simclock.Clock) {
			addLiker(t, st, page, cl.Now())
		})
	}
	clock.Drain(0)
	if got := mon.TotalLikes(); got != 40 {
		t.Fatalf("observed %d likes, want 40", got)
	}
	if mon.Cursor() != st.LikeCountOfPage(page) {
		t.Fatalf("cursor %d != page stream %d", mon.Cursor(), st.LikeCountOfPage(page))
	}
	// Snapshots must be monotone and end at the full count.
	snaps := mon.Snapshots()
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Cumulative < snaps[i-1].Cumulative {
			t.Fatalf("series not monotone at %d: %+v", i, snaps[i])
		}
	}
	if len(mon.Likers()) != 40 {
		t.Fatalf("likers = %d", len(mon.Likers()))
	}
	sum := mon.Summarize(clock.Now(), 15)
	if sum.Events != 40 || sum.Cursor != 40 {
		t.Fatalf("summary journal stats = %+v", sum)
	}
}
