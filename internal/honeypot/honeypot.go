// Package honeypot implements the study-side instrumentation of §3:
// deploying deliberately empty "Virtual Electricity" pages whose
// description warns "This is not a real page, so please do not like
// it.", promoting them via Facebook ads or farm orders, and monitoring
// garnered likes on the paper's cadence — a crawl every 2 hours during
// the campaign, daily afterwards, stopping once a page has gone a full
// week without a new like.
package honeypot

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/simclock"
	"repro/internal/socialnet"
)

// PageName and PageDescription reproduce the paper's honeypot content.
const (
	PageName        = "Virtual Electricity"
	PageDescription = "This is not a real page, so please do not like it."
)

// Deploy creates one honeypot page with a fresh administrator account
// (the paper used a different owner per page).
func Deploy(st *socialnet.Store, campaignID string, createdAt time.Time) (socialnet.PageID, socialnet.UserID, error) {
	owner := st.AddUser(socialnet.User{
		Gender:     socialnet.GenderUnknown,
		Country:    socialnet.CountryOther,
		Searchable: false,
		Kind:       socialnet.KindOrganic,
		CreatedAt:  createdAt,
	})
	pid, err := st.AddPage(socialnet.Page{
		Name:        fmt.Sprintf("%s (%s)", PageName, campaignID),
		Description: PageDescription,
		Owner:       owner,
		Category:    "honeypot",
		CreatedAt:   createdAt,
		Honeypot:    true,
	})
	if err != nil {
		return 0, 0, err
	}
	return pid, owner, nil
}

// Snapshot is one monitoring observation.
type Snapshot struct {
	At         time.Time
	Cumulative int
}

// MonitorConfig sets the §3 cadence.
type MonitorConfig struct {
	// CampaignPeriod is the phase polled every ActiveInterval.
	CampaignDays int
	// ActiveInterval is the in-campaign poll spacing (paper: 2 hours).
	ActiveInterval time.Duration
	// TailInterval is the post-campaign spacing (paper: 24 hours).
	TailInterval time.Duration
	// QuietCutoff stops monitoring after this long without a new like
	// (paper: one week).
	QuietCutoff time.Duration
	// MaxDays hard-stops monitoring (safety bound; 0 = none).
	MaxDays int
}

// DefaultMonitorConfig matches the paper's procedure.
func DefaultMonitorConfig(campaignDays int) MonitorConfig {
	return MonitorConfig{
		CampaignDays:   campaignDays,
		ActiveInterval: 2 * time.Hour,
		TailInterval:   24 * time.Hour,
		QuietCutoff:    7 * 24 * time.Hour,
		MaxDays:        60,
	}
}

// Validate checks the config.
func (c *MonitorConfig) Validate() error {
	if c.CampaignDays < 1 {
		return fmt.Errorf("honeypot: campaign days %d must be >=1", c.CampaignDays)
	}
	if c.ActiveInterval <= 0 || c.TailInterval <= 0 {
		return fmt.Errorf("honeypot: poll intervals must be positive")
	}
	if c.QuietCutoff <= 0 {
		return fmt.Errorf("honeypot: quiet cutoff must be positive")
	}
	if c.MaxDays < 0 {
		return fmt.Errorf("honeypot: max days %d must be >=0", c.MaxDays)
	}
	return nil
}

// Monitor observes one honeypot page on the simulation clock.
//
// Each poll advances a per-page journal cursor instead of re-reading
// the page's cumulative like stream: a tick costs O(likes since the
// previous tick), so a long-monitored page with a large backlog ticks
// in constant time once the stream goes quiet. The observed series is
// identical to a full re-scan per poll — the §3 crawl cadence is
// preserved as a view over the store's append-only journal.
type Monitor struct {
	store *socialnet.Store
	page  socialnet.PageID
	cfg   MonitorConfig

	started   time.Time
	snapshots []Snapshot
	firstSeen map[socialnet.UserID]time.Time
	// cursor is the page-stream high-water mark: the number of like
	// events consumed so far, which for an append-only stream is also
	// the observed cumulative like count.
	cursor    int
	lastNew   time.Time
	stoppedAt time.Time
	stopped   bool
	inTail    bool
	ticker    *simclock.Ticker
}

// StartMonitor begins polling the page.
func StartMonitor(clock *simclock.Clock, st *socialnet.Store, page socialnet.PageID, cfg MonitorConfig) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := st.Page(page); err != nil {
		return nil, err
	}
	m := &Monitor{
		store:     st,
		page:      page,
		cfg:       cfg,
		started:   clock.Now(),
		firstSeen: make(map[socialnet.UserID]time.Time),
		lastNew:   clock.Now(),
	}
	// Initial observation at start.
	m.observe(clock)
	t, err := clock.Every(cfg.ActiveInterval, fmt.Sprintf("monitor-page-%d", page), m.tick)
	if err != nil {
		return nil, err
	}
	m.ticker = t
	return m, nil
}

// tick is the periodic poll. It returns false to stop the ticker.
func (m *Monitor) tick(clock *simclock.Clock) bool {
	if m.stopped {
		return false
	}
	m.observe(clock)
	now := clock.Now()
	elapsed := now.Sub(m.started)

	// Phase switch: campaign over -> daily polls.
	if !m.inTail && elapsed >= time.Duration(m.cfg.CampaignDays)*24*time.Hour {
		m.inTail = true
		_ = m.ticker.Reset(m.cfg.TailInterval)
	}
	// Stop: a week with no new like (only evaluated in the tail — the
	// paper kept the 2-hour cadence for the whole campaign), or the
	// hard cap.
	if m.inTail && now.Sub(m.lastNew) > m.cfg.QuietCutoff {
		m.stop(now)
		return false
	}
	if m.cfg.MaxDays > 0 && elapsed >= time.Duration(m.cfg.MaxDays)*24*time.Hour {
		m.stop(now)
		return false
	}
	return true
}

func (m *Monitor) observe(clock *simclock.Clock) {
	batch, next := m.store.PageEventsSince(m.page, m.cursor)
	m.cursor = next
	now := clock.Now()
	fresh := 0
	for _, ev := range batch {
		if _, seen := m.firstSeen[ev.User]; !seen {
			m.firstSeen[ev.User] = now
			fresh++
		}
	}
	if fresh > 0 {
		m.lastNew = now
	}
	m.snapshots = append(m.snapshots, Snapshot{At: now, Cumulative: m.cursor})
}

func (m *Monitor) stop(at time.Time) {
	m.stopped = true
	m.stoppedAt = at
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// Stopped reports whether monitoring has ended, and when.
func (m *Monitor) Stopped() (bool, time.Time) { return m.stopped, m.stoppedAt }

// Snapshots returns the observation series.
func (m *Monitor) Snapshots() []Snapshot {
	return append([]Snapshot(nil), m.snapshots...)
}

// Likers returns the observed likers in first-seen order (ties by ID).
func (m *Monitor) Likers() []socialnet.UserID {
	out := make([]socialnet.UserID, 0, len(m.firstSeen))
	for u := range m.firstSeen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := m.firstSeen[out[i]], m.firstSeen[out[j]]
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return out[i] < out[j]
	})
	return out
}

// FirstSeen returns when a liker was first observed by a poll.
func (m *Monitor) FirstSeen(u socialnet.UserID) (time.Time, bool) {
	t, ok := m.firstSeen[u]
	return t, ok
}

// TotalLikes returns the final observed cumulative count.
func (m *Monitor) TotalLikes() int {
	if len(m.snapshots) == 0 {
		return 0
	}
	return m.snapshots[len(m.snapshots)-1].Cumulative
}

// Cursor returns the monitor's journal-cursor high-water mark: the
// number of page like events consumed across all polls so far.
func (m *Monitor) Cursor() int { return m.cursor }

// MonitoringDays returns how many days the page was monitored (start to
// stop, rounded up), or elapsed-so-far when still running.
func (m *Monitor) MonitoringDays(now time.Time) int {
	end := now
	if m.stopped {
		end = m.stoppedAt
	}
	d := end.Sub(m.started)
	days := int(d / (24 * time.Hour))
	if d%(24*time.Hour) != 0 {
		days++
	}
	return days
}

// Summary is the complete outcome of one monitored campaign, collected
// in a single call once the campaign's clock has drained. The study
// engine's worker pool collects one Summary per campaign; a Monitor is
// confined to the goroutine driving its clock, so collection needs no
// locking.
//
// Summaries are persistence-stable: core.Study.Persist writes them to
// the study directory as JSON (the tags below are the wire format) and
// a reopened study finalizes from them byte-identically, so fields may
// be added but existing tags must not change meaning.
type Summary struct {
	// Likers is the observed liker set in first-seen order (ties by ID).
	Likers []socialnet.UserID `json:"likers"`
	// TotalLikes is the final observed cumulative count.
	TotalLikes int `json:"total_likes"`
	// MonitoringDays is the monitored span in days, rounded up.
	MonitoringDays int `json:"monitoring_days"`
	// Series is the cumulative like count by day offset 0..days.
	Series []int `json:"series"`
	// Events is the number of like events the page's journal stream held
	// at summarize time; Cursor is the monitor's high-water mark (events
	// consumed by polls). They differ only if likes landed after the
	// monitor stopped.
	Events int `json:"events"`
	Cursor int `json:"cursor"`
}

// Summarize collects the monitor's full outcome: likers, final count,
// monitored span (using now for a still-running monitor), and the
// day-bucketed cumulative series over at least the given number of days.
func (m *Monitor) Summarize(now time.Time, days int) Summary {
	return Summary{
		Likers:         m.Likers(),
		TotalLikes:     m.TotalLikes(),
		MonitoringDays: m.MonitoringDays(now),
		Series:         m.CumulativeByDay(days),
		Events:         m.store.LikeCountOfPage(m.page),
		Cursor:         m.cursor,
	}
}

// CumulativeByDay buckets the observed cumulative likes into day offsets
// 0..days (value at each day boundary), for Figure 2's time series. The
// value for day d is the last snapshot at or before start+d*24h.
func (m *Monitor) CumulativeByDay(days int) []int {
	out := make([]int, days+1)
	cur := 0
	si := 0
	for d := 0; d <= days; d++ {
		boundary := m.started.Add(time.Duration(d) * 24 * time.Hour)
		for si < len(m.snapshots) && !m.snapshots[si].At.After(boundary) {
			cur = m.snapshots[si].Cumulative
			si++
		}
		out[d] = cur
	}
	return out
}
