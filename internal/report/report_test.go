package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "ID", "Value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-id", "22")
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Both value columns start at the same offset.
	h := strings.Index(lines[1], "Value")
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "22")
	if h != r1 || h != r2 {
		t.Fatalf("misaligned columns: %d %d %d\n%s", h, r1, r2, out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Fatalf("row lost:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "hello, world")
	tb.AddRow("2", `say "hi"`)
	out := tb.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,"hello, world"` {
		t.Fatalf("quoted comma = %q", lines[1])
	}
	if lines[2] != `2,"say ""hi"""` {
		t.Fatalf("escaped quotes = %q", lines[2])
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F(3.14159, 2)")
	}
	if F(-0.0001, 1) != "0.0" {
		t.Fatalf("F(-0.0001, 1) = %q, want 0.0", F(-0.0001, 1))
	}
	if Pct(54.55) != "54.5" && Pct(54.55) != "54.6" {
		t.Fatalf("Pct = %q", Pct(54.55))
	}
}

func TestHeatmap(t *testing.T) {
	m := [][]float64{{100, 0}, {50, 100}}
	out := Heatmap("HM", []string{"r1", "r2"}, m)
	if !strings.Contains(out, "HM") || !strings.Contains(out, "legend:") {
		t.Fatalf("heatmap:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Fatal("full intensity char missing")
	}
	// Out-of-range values are clamped, not panicking.
	_ = Heatmap("", []string{"a"}, [][]float64{{-5}})
	_ = Heatmap("", []string{"a"}, [][]float64{{500}})
}

func TestMatrixTable(t *testing.T) {
	out := MatrixTable("M", []string{"x", "y"}, [][]float64{{1, 2.5}, {3, 4}}, 1)
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "x") {
		t.Fatalf("matrix table:\n%s", out)
	}
}

func TestLinePlot(t *testing.T) {
	out := LinePlot("Likes", []string{"a", "b"},
		[][]int{{0, 10, 20, 30}, {0, 5, 5, 5}}, 8)
	if !strings.Contains(out, "Likes") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "A = a") || !strings.Contains(out, "B = b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "day 0") {
		t.Fatal("missing x axis")
	}
	empty := LinePlot("E", nil, nil, 8)
	if !strings.Contains(empty, "no data") {
		t.Fatalf("empty plot:\n%s", empty)
	}
	zeros := LinePlot("Z", []string{"z"}, [][]int{{0, 0}}, 8)
	if !strings.Contains(zeros, "no data") {
		t.Fatalf("all-zero plot:\n%s", zeros)
	}
}

func TestCDFPlot(t *testing.T) {
	at := func(si int, x float64) float64 {
		if si == 0 {
			return x / 100
		}
		return 1
	}
	out := CDFPlot("CDF", []string{"ramp", "flat"}, at, 100, 40, 8)
	if !strings.Contains(out, "CDF") || !strings.Contains(out, "A = ramp") {
		t.Fatalf("cdf plot:\n%s", out)
	}
	if !strings.Contains(out, " 1.00 |") || !strings.Contains(out, " 0.00 |") {
		t.Fatalf("missing y labels:\n%s", out)
	}
}

func TestStackedBars(t *testing.T) {
	pct := map[string]map[string]float64{
		"row1": {"USA": 50, "India": 50},
		"row2": {"USA": 100},
	}
	out := StackedBars("Geo", []string{"row1", "row2"}, []string{"USA", "India"}, pct)
	if !strings.Contains(out, "Geo") || !strings.Contains(out, "legend:") {
		t.Fatalf("stacked bars:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var rowLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			rowLines = append(rowLines, l)
		}
	}
	if len(rowLines) != 2 {
		t.Fatalf("bar rows = %d", len(rowLines))
	}
	// Bars are fixed width.
	w1 := strings.LastIndex(rowLines[0], "|") - strings.Index(rowLines[0], "|")
	w2 := strings.LastIndex(rowLines[1], "|") - strings.Index(rowLines[1], "|")
	if w1 != w2 {
		t.Fatalf("bars not equal width: %d vs %d", w1, w2)
	}
}
