// Package report renders the study's tables and figures as aligned ASCII
// tables, CSV, simple line plots, and heatmaps — one renderer per paper
// artifact, so the harness can print the same rows and series the paper
// reports.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given decimals, trimming "-0".
func F(v float64, decimals int) string {
	s := fmt.Sprintf("%.*f", decimals, v)
	if s == "-0" || strings.HasPrefix(s, "-0.") && strings.Trim(s[3:], "0") == "" {
		s = s[1:]
	}
	return s
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return F(v, 1) }

// Heatmap renders a matrix (values expected in [0,100]) with row/column
// labels using intensity characters, mirroring the paper's Figure 5.
func Heatmap(title string, labels []string, m [][]float64) string {
	ramp := []rune(" .:-=+*#%@")
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	// Column header: first letter codes with index.
	b.WriteString(strings.Repeat(" ", labelW+1))
	for j := range labels {
		b.WriteString(fmt.Sprintf("%3d", j))
	}
	b.WriteByte('\n')
	for i, row := range m {
		b.WriteString(fmt.Sprintf("%-*s ", labelW, labels[i]))
		for _, v := range row {
			if v < 0 {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			idx := int(v / 100 * float64(len(ramp)-1))
			ch := ramp[idx]
			b.WriteString("  ")
			b.WriteRune(ch)
		}
		b.WriteByte('\n')
	}
	b.WriteString("legend: ")
	for i, r := range ramp {
		b.WriteString(fmt.Sprintf("'%c'=%d ", r, i*100/(len(ramp)-1)))
	}
	b.WriteByte('\n')
	return b.String()
}

// MatrixTable renders a labelled numeric matrix as a table of values.
func MatrixTable(title string, labels []string, m [][]float64, decimals int) string {
	t := NewTable(title, append([]string{""}, labels...)...)
	for i, row := range m {
		cells := make([]string, 0, len(row)+1)
		cells = append(cells, labels[i])
		for _, v := range row {
			cells = append(cells, F(v, decimals))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// LinePlot renders multiple integer series (e.g. cumulative likes per
// day) as an ASCII chart of the given height.
func LinePlot(title string, seriesNames []string, series [][]int, height int) string {
	if height < 4 {
		height = 4
	}
	maxV, maxLen := 0, 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
		for _, v := range s {
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if maxV == 0 || maxLen == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	marks := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", maxLen*3))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for x, v := range s {
			y := height - 1 - int(float64(v)/float64(maxV)*float64(height-1))
			col := x * 3
			if grid[y][col] == ' ' {
				grid[y][col] = mark
			} else {
				grid[y][col] = '+'
			}
		}
	}
	for i, rowBytes := range grid {
		val := int(float64(height-1-i) / float64(height-1) * float64(maxV))
		b.WriteString(fmt.Sprintf("%6d |%s\n", val, string(rowBytes)))
	}
	b.WriteString("       +" + strings.Repeat("-", maxLen*3) + "\n")
	b.WriteString("        day 0")
	if maxLen > 5 {
		b.WriteString(strings.Repeat(" ", (maxLen-5)*3-6) + fmt.Sprintf("day %d", maxLen-1))
	}
	b.WriteByte('\n')
	for si, name := range seriesNames {
		b.WriteString(fmt.Sprintf("  %c = %s\n", marks[si%len(marks)], name))
	}
	return b.String()
}

// CDFPlot renders ECDF curves given sampled (x, y) step points per
// series, on a fixed x grid up to xMax.
func CDFPlot(title string, seriesNames []string, at func(series int, x float64) float64, xMax float64, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	marks := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si := range seriesNames {
		mark := marks[si%len(marks)]
		for col := 0; col < width; col++ {
			x := xMax * float64(col) / float64(width-1)
			y := at(si, x)
			if y < 0 {
				y = 0
			}
			if y > 1 {
				y = 1
			}
			rowI := height - 1 - int(y*float64(height-1))
			if grid[rowI][col] == ' ' {
				grid[rowI][col] = mark
			} else if grid[rowI][col] != mark {
				grid[rowI][col] = '+'
			}
		}
	}
	for i, rowBytes := range grid {
		frac := float64(height-1-i) / float64(height-1)
		b.WriteString(fmt.Sprintf("%5.2f |%s\n", frac, string(rowBytes)))
	}
	b.WriteString("      +" + strings.Repeat("-", width) + "\n")
	b.WriteString(fmt.Sprintf("       0%sx=%.0f\n", strings.Repeat(" ", width-12), xMax))
	for si, name := range seriesNames {
		b.WriteString(fmt.Sprintf("  %c = %s\n", marks[si%len(marks)], name))
	}
	return b.String()
}

// StackedBars renders per-row percentage breakdowns (Figure 1 style):
// each row is a horizontal 50-char bar partitioned by category.
func StackedBars(title string, rowLabels []string, categories []string, pct map[string]map[string]float64) string {
	const barW = 50
	symbols := []byte("#=+:.ox*%&")
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, rl := range rowLabels {
		row := pct[rl]
		b.WriteString(fmt.Sprintf("%-*s |", labelW, rl))
		written := 0
		for ci, cat := range categories {
			n := int(row[cat] / 100 * barW)
			if written+n > barW {
				n = barW - written
			}
			b.WriteString(strings.Repeat(string(symbols[ci%len(symbols)]), n))
			written += n
		}
		if written < barW {
			b.WriteString(strings.Repeat(" ", barW-written))
		}
		b.WriteString("|\n")
	}
	b.WriteString("legend: ")
	for ci, cat := range categories {
		b.WriteString(fmt.Sprintf("'%c'=%s ", symbols[ci%len(symbols)], cat))
	}
	b.WriteByte('\n')
	return b.String()
}
