package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/crawler"
	"repro/internal/socialnet"
)

// runMerge is the `likefraud merge` subcommand: fold the exports of an
// N-way sharded crawl (one -sink-out file per `likefraud crawl -shard
// i/n` process) back into the single-process §4 tables. The merge
// validates that the exports form one complete partition over one
// roster; under the sharded crawl's ownership discipline the output is
// byte-identical to an unsharded crawl of the same world.
func runMerge(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("likefraud merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tables := fs.String("tables", "crawl-tables.json", "write the merged §4 table JSON to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "likefraud merge: usage: likefraud merge [-tables OUT] shard1.json shard2.json ...")
		return 2
	}
	exports := make([]crawler.ShardExport, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud merge: %v\n", err)
			return 1
		}
		var e crawler.ShardExport
		if err := json.Unmarshal(data, &e); err != nil {
			fmt.Fprintf(stderr, "likefraud merge: %s: %v\n", p, err)
			return 1
		}
		exports = append(exports, e)
	}
	analyzer, err := crawler.MergeShardExports(exports)
	if err != nil {
		fmt.Fprintf(stderr, "likefraud merge: %v\n", err)
		return 1
	}
	for _, agg := range analyzer.Aggregators() {
		if c, ok := agg.(interface{ MergeConflicts() int }); ok && c.MergeConflicts() > 0 {
			fmt.Fprintf(stderr, "likefraud merge: warning: %d per-user like-count conflicts across shards (profiles changed between shard crawls); larger counts kept\n", c.MergeConflicts())
		}
	}
	t, err := analyzer.Tables()
	if err != nil {
		fmt.Fprintf(stderr, "likefraud merge: %v\n", err)
		return 1
	}
	data, err := t.MarshalStable()
	if err != nil {
		fmt.Fprintf(stderr, "likefraud merge: %v\n", err)
		return 1
	}
	if err := socialnet.WriteFileDurable(*tables, data); err != nil {
		fmt.Fprintf(stderr, "likefraud merge: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "merged %d shard exports into %s (%d campaigns)\n", len(exports), *tables, len(analyzer.Campaigns))
	return 0
}
