package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

// runCrawl is the `likefraud crawl` subcommand: the §3 data collection
// as a concurrent, resumable pipeline. With no -url it builds the study
// world, serves it on a loopback listener, and crawls its own campaign
// pages — a self-contained end-to-end exercise of the HTTP + crawl
// stack. With -url it crawls an external API server (then -pages is
// required). -checkpoint makes the crawl resumable: the file is loaded
// if present, rewritten after every fully processed like window, and a
// crawl interrupted by SIGINT/SIGTERM picks up where it left off.
//
// -data-dir makes the self-served world itself durable: the first run
// builds it once, checkpoints it into the directory, and serves the
// reopened copy; later runs reopen it instead of rebuilding, so crawl
// checkpoints (stored in the same directory by default) always resume
// against the bit-identical world — cursors never go stale between
// runs.
func runCrawl(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("likefraud crawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "API base URL(s) to crawl, comma-separated for read replicas of one leader (default: build a study world and serve it in-process)")
	pagesFlag := fs.String("pages", "", "comma-separated page IDs to crawl (default: all campaign pages; required with -url)")
	seed := fs.Int64("seed", 2014, "random seed for the self-served study world")
	scale := fs.Float64("scale", 0.1, "self-served study scale in (0,1]")
	workers := fs.Int("workers", 8, "concurrent profile fetchers")
	batch := fs.Int("batch", 50, "profiles per batched /api/users request")
	interval := fs.Duration("interval", 0, "politeness spacing between requests (shared across workers)")
	fs.DurationVar(interval, "min-interval", 0, "alias for -interval: the starting (and, unless -adaptive-floor lowers it, minimum) request spacing")
	backoffCap := fs.Duration("backoff-cap", 0, "cap on the retry backoff ceiling (0 = client default, 2s)")
	adaptive := fs.Bool("adaptive", true, "AIMD-adapt the request spacing: shrink on sustained successes, multiply on 429s (false = fixed -interval spacing)")
	adaptiveFloor := fs.Duration("adaptive-floor", 0, "fastest spacing the adaptive limiter may reach (0 = -interval: never exceed configured politeness)")
	adaptiveCeil := fs.Duration("adaptive-ceil", 0, "slowest spacing an adaptive backoff may stretch to (0 = 2s)")
	adaptiveStep := fs.Duration("adaptive-step", 0, "additive spacing shrink per success window (0 = 1ms)")
	adaptiveWindow := fs.Int("adaptive-window", 0, "consecutive successes per additive shrink (0 = 8)")
	adaptiveBackoff := fs.Float64("adaptive-backoff", 0, "multiplicative spacing stretch per 429 (0 = 2.0; must be >= 1)")
	sequential := fs.Bool("sequential", false, "use the legacy page-sequential crawl engine instead of the global work queue")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: loaded if present, rewritten as the crawl progresses (default with -data-dir: DIR/crawl-checkpoint.json)")
	dataDir := fs.String("data-dir", "", "durable directory for the self-served world: built once, reopened on later runs")
	syncEvery := fs.Int("sync-every", 1, "fsync the world's journal after this many likes; 1 = group commit, fully durable acknowledgements (with -data-dir)")
	syncInterval := fs.Duration("sync-interval", socialnet.DefaultSyncInterval, "background journal fsync period (with -data-dir)")
	out := fs.String("out", "", "write crawled profiles as JSON lines to this file")
	analyze := fs.Bool("analyze", false, "stream crawled profiles into the §4 aggregators and write the table JSON (see -tables)")
	tables := fs.String("tables", "", "with -analyze: write the §4 table JSON here (default crawl-tables.json, or DIR/crawl-tables.json with -data-dir)")
	shardFlag := fs.String("shard", "", "crawl one slice of an N-way sharded study, as \"i/n\" (1 <= i <= n): this process owns the pages hashing to shard i and writes a -sink-out export for `likefraud merge` instead of partial -tables")
	sinkOut := fs.String("sink-out", "", "with -shard: write this shard's export (roster, baseline, aggregator snapshot) to this file")
	forceActive := fs.String("active", "", "comma-separated campaign IDs to treat as active regardless of like count (the default heuristic marks zero-like campaigns inactive)")
	forceInactive := fs.String("inactive", "", "comma-separated campaign IDs to treat as never-delivered (inactive) regardless of like count")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	shardIdx, shardN := 0, 1
	if *shardFlag != "" {
		var i, n int
		if _, err := fmt.Sscanf(*shardFlag, "%d/%d", &i, &n); err != nil || n < 1 || i < 1 || i > n {
			fmt.Fprintf(stderr, "likefraud crawl: bad -shard %q (want i/n with 1 <= i <= n)\n", *shardFlag)
			return 2
		}
		shardIdx, shardN = i-1, n
		if !*analyze {
			fmt.Fprintln(stderr, "likefraud crawl: -shard requires -analyze (the merge folds aggregator state, not raw profiles)")
			return 2
		}
		if *sinkOut == "" {
			fmt.Fprintln(stderr, "likefraud crawl: -shard requires -sink-out (the export `likefraud merge` consumes)")
			return 2
		}
	}
	if *checkpoint == "" && *dataDir != "" {
		*checkpoint = filepath.Join(*dataDir, "crawl-checkpoint.json")
	}
	if *tables == "" {
		*tables = "crawl-tables.json"
		if *dataDir != "" {
			*tables = filepath.Join(*dataDir, "crawl-tables.json")
		}
	}

	var bases []string
	for _, part := range strings.Split(*url, ",") {
		if part = strings.TrimSpace(part); part != "" {
			bases = append(bases, part)
		}
	}
	base := ""
	if len(bases) > 0 {
		base = bases[0]
	}
	var pageIDs []int64
	var baseline []socialnet.UserID
	if base == "" {
		wopts := socialnet.WALOptions{SyncEvery: *syncEvery, SyncInterval: *syncInterval}
		store, pages, err := selfServedWorld(*dataDir, wopts, *seed, *scale, *quiet, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
		defer store.Close()
		pageIDs = pages
		if *analyze {
			// The Figure 4 "Facebook" row needs the organic baseline
			// sample. The sample is a pure function of (seed, world), so
			// the crawl side can re-derive exactly the IDs the study
			// engine drew — and then crawl their profiles like any liker.
			cfg, err := core.ScaledConfig(*seed, *scale)
			if err != nil {
				fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
				return 1
			}
			baseline, err = analysis.BaselineSample(stats.SplitRand(*seed, "baseline"), store, cfg.BaselineSize)
			if err != nil {
				fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
				return 1
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
		hs := &http.Server{
			Handler:           api.NewServer(store, ""),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		if !*quiet {
			fmt.Fprintf(stderr, "platform served at %s\n", base)
		}
	} else if *pagesFlag == "" {
		fmt.Fprintln(stderr, "likefraud crawl: -pages is required with -url")
		return 2
	}
	if *pagesFlag != "" {
		pageIDs = pageIDs[:0]
		for _, part := range strings.Split(*pagesFlag, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(stderr, "likefraud crawl: bad page id %q\n", part)
				return 2
			}
			pageIDs = append(pageIDs, id)
		}
	}

	ccfg := crawler.DefaultConfig(base)
	if len(bases) > 1 {
		// Round-robin the read load across the replicas; retries fail
		// over to the next one.
		ccfg.BaseURLs = bases
	}
	if shardN > 1 {
		// Each shard process crawls under its own politeness identity —
		// the paper's N crawl accounts, one throttle budget each.
		ccfg.APIToken = fmt.Sprintf("crawler-shard-%d-of-%d", shardIdx+1, shardN)
	}
	ccfg.MinInterval = *interval
	ccfg.BackoffCap = *backoffCap
	ccfg.Adaptive = *adaptive
	ccfg.AdaptiveFloor = *adaptiveFloor
	ccfg.AdaptiveCeil = *adaptiveCeil
	ccfg.AdaptiveStep = *adaptiveStep
	ccfg.AdaptiveWindow = *adaptiveWindow
	ccfg.AdaptiveBackoff = *adaptiveBackoff
	cl, err := crawler.New(ccfg)
	if err != nil {
		fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
		return 1
	}

	var resume *crawler.Checkpoint
	if *checkpoint != "" {
		if data, err := os.ReadFile(*checkpoint); err == nil {
			var ck crawler.Checkpoint
			if err := json.Unmarshal(data, &ck); err != nil {
				fmt.Fprintf(stderr, "likefraud crawl: corrupt checkpoint %s: %v\n", *checkpoint, err)
				return 1
			}
			resume = &ck
			if !*quiet {
				fmt.Fprintf(stderr, "resuming: %d profiles already crawled\n", len(ck.Crawled))
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
	}

	// The signal context covers everything that talks to the network,
	// roster discovery included — Ctrl-C must be able to cancel a stuck
	// remote fetch, not just the crawl proper.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -analyze: build the crawl-side §4 analyzer over the roster the
	// crawler can observe (honeypot page names carry the campaign ID),
	// and restore its state from the checkpoint when resuming.
	var analyzer *analysis.CrawlAnalyzer
	var sink *crawler.AnalysisSink
	// trueRoster keeps the un-masked active flags for the shard export;
	// crawlPages/crawlBaseline are this process's slice of the work.
	var trueRoster []analysis.CrawlCampaign
	crawlPages, crawlBaseline := pageIDs, baseline
	if shardN > 1 {
		crawlPages = crawler.ShardPages(pageIDs, shardIdx, shardN)
		crawlBaseline = crawler.ShardUsers(baseline, shardIdx, shardN)
	}
	switch {
	case *analyze:
		// The roster is discovered over the FULL page list even when
		// sharded — every shard must export the identical roster for the
		// merge to validate — but the analyzer activates only owned
		// campaigns, the ownership discipline that makes the merged
		// tables byte-identical to a single-process crawl.
		roster, err := discoverRoster(ctx, cl, pageIDs)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: roster: %v\n", err)
			return 1
		}
		applyActiveOverrides(roster, *forceActive, *forceInactive)
		trueRoster = roster
		crawlRoster := roster
		if shardN > 1 {
			crawlRoster = analysis.ShardActive(roster, func(p socialnet.PageID) bool {
				return crawler.ShardOf(int64(p), shardN) == shardIdx
			})
		}
		analyzer = analysis.NewCrawlAnalyzer(crawlRoster, crawlBaseline)
		sink = crawler.NewAnalysisSink(analyzer.Aggregators()...)
		if resume != nil {
			if resume.Sink == nil {
				fmt.Fprintf(stderr, "likefraud crawl: checkpoint %s has no aggregator state (was it written without -analyze?); delete it to recrawl\n", *checkpoint)
				return 1
			}
			if err := sink.Restore(resume.Sink); err != nil {
				fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
				return 1
			}
		}
	case resume != nil && resume.Sink != nil:
		// The inverse mistake: resuming an -analyze checkpoint without
		// -analyze. Proceeding would rewrite the checkpoint WITHOUT the
		// aggregator state (no sink attached), silently destroying the
		// analysis progress the previous run paid for.
		fmt.Fprintf(stderr, "likefraud crawl: checkpoint %s carries §4 aggregator state; resume with -analyze (or delete the checkpoint to recrawl without it)\n", *checkpoint)
		return 1
	}

	var outW io.Writer = io.Discard
	if *out != "" {
		// A resumed crawl appends: the profiles already in the file are
		// exactly the ones the checkpoint will never re-emit.
		mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		if resume != nil {
			mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
		}
		f, err := os.OpenFile(*out, mode, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
		defer f.Close()
		outW = f
	}
	enc := json.NewEncoder(outW)

	pcfg := crawler.PipelineConfig{Workers: *workers, BatchSize: *batch, Sequential: *sequential}
	if sink != nil {
		pcfg.Sink = sink
	}
	if *checkpoint != "" {
		pcfg.OnCheckpoint = func(ck crawler.Checkpoint) {
			if err := writeCheckpoint(*checkpoint, ck); err != nil && !*quiet {
				fmt.Fprintf(stderr, "likefraud crawl: checkpoint: %v\n", err)
			}
		}
	}
	pipe := crawler.NewPipeline(cl, pcfg, resume)

	start := time.Now()
	profiles := 0
	perPage := map[int64]int{}
	emitProfile := func(page int64, prof crawler.LikerProfile) error {
		// A failed write aborts the crawl before the user is marked
		// crawled, so nothing silently vanishes from the output.
		if err := enc.Encode(struct {
			Page int64 `json:"page"`
			crawler.LikerProfile
		}{page, prof}); err != nil {
			return fmt.Errorf("writing profile: %w", err)
		}
		profiles++
		perPage[page]++
		return nil
	}
	crawlErr := pipe.Crawl(ctx, crawlPages, emitProfile)
	if crawlErr == nil && *analyze && len(crawlBaseline) > 0 {
		// The baseline sample rides the same pipeline (dedup, sink,
		// checkpoint); its profiles appear in the JSONL with page -1.
		ids := make([]int64, len(crawlBaseline))
		for i, u := range crawlBaseline {
			ids[i] = int64(u)
		}
		crawlErr = pipe.CrawlProfiles(ctx, ids, emitProfile)
	}
	if *checkpoint != "" {
		// A failed sink snapshot must not overwrite the last good
		// checkpoint with a sink-less one — that would strand the resume.
		ck := pipe.Checkpoint()
		if err := pipe.SnapshotErr(); err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: checkpoint not written (sink snapshot failed): %v\n", err)
			if crawlErr == nil {
				crawlErr = err
			}
		} else if err := writeCheckpoint(*checkpoint, ck); err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: checkpoint: %v\n", err)
		}
	}
	if crawlErr != nil {
		fmt.Fprintf(stderr, "likefraud crawl: %v\n", crawlErr)
		if *checkpoint != "" {
			fmt.Fprintf(stderr, "progress saved to %s; rerun to resume\n", *checkpoint)
		}
		return 1
	}
	switch {
	case shardN > 1:
		// A shard's tables would be partial — export the aggregator
		// snapshot for `likefraud merge` instead.
		blob, err := sink.Snapshot()
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: shard export: %v\n", err)
			return 1
		}
		export := crawler.NewShardExport(shardIdx, shardN, trueRoster, baseline, blob)
		data, err := json.MarshalIndent(export, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: shard export: %v\n", err)
			return 1
		}
		if err := socialnet.WriteFileDurable(*sinkOut, data); err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: shard export: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote shard %d/%d export (%d owned pages) to %s\n", shardIdx+1, shardN, len(crawlPages), *sinkOut)
	case *analyze:
		t, err := analyzer.Tables()
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: analyze: %v\n", err)
			return 1
		}
		data, err := t.MarshalStable()
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: analyze: %v\n", err)
			return 1
		}
		if err := socialnet.WriteFileDurable(*tables, data); err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: analyze: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote §4 tables for %d campaigns to %s\n", len(analyzer.Campaigns), *tables)
	}

	var ids []int64
	for id := range perPage {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(stdout, "page %d: %d new likers\n", id, perPage[id])
	}
	fmt.Fprintf(stdout, "crawled %d profiles over %d pages in %s (%d requests, %d retries, %d throttled, %d workers, final interval %s)\n",
		profiles, len(crawlPages), time.Since(start).Round(time.Millisecond),
		cl.Requests(), cl.Retries(), cl.Throttled(), *workers, cl.Interval())
	return 0
}

// selfServedWorld produces the store the subcommand serves to itself,
// plus the campaign (honeypot) page IDs to crawl. Without -data-dir it
// builds and runs the study in memory, as before. With -data-dir it
// reopens the persisted world when one exists; otherwise it builds the
// world, checkpoints it, and serves the durably reopened copy — so the
// first run and every resume see the identical canonical like streams.
func selfServedWorld(dataDir string, wopts socialnet.WALOptions, seed int64, scale float64, quiet bool, stderr io.Writer) (*socialnet.Store, []int64, error) {
	buildWorld := func() (*socialnet.Store, error) {
		if !quiet {
			fmt.Fprintf(stderr, "building world and running campaigns (seed %d, scale %.2f)...\n", seed, scale)
		}
		cfg, err := core.ScaledConfig(seed, scale)
		if err != nil {
			return nil, err
		}
		study, err := core.NewStudy(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := study.Run(); err != nil {
			return nil, err
		}
		return study.Store(), nil
	}
	if dataDir == "" {
		store, err := buildWorld()
		if err != nil {
			return nil, nil, err
		}
		return store, honeypotPages(store), nil
	}
	resuming := socialnet.HasDurableState(dataDir)
	store, stats, err := socialnet.OpenOrCreate(dataDir, wopts, buildWorld)
	if err != nil {
		return nil, nil, err
	}
	if !quiet {
		if resuming {
			fmt.Fprintf(stderr, "reopened world from %s (%d users, %d pages, %d WAL tail events)\n",
				dataDir, store.NumUsers(), store.NumPages(), stats.TailEvents)
		} else {
			fmt.Fprintf(stderr, "world persisted to %s\n", dataDir)
		}
	}
	return store, honeypotPages(store), nil
}

// discoverRoster builds the crawl-side campaign roster from what the
// API exposes: one CrawlCampaign per page, labelled by the campaign ID
// embedded in the honeypot page name ("Virtual Electricity (FB-USA)"),
// active when the page has garnered any likes. The roster order is the
// page order given on the command line (for a self-served world:
// ascending page ID, which is deploy — i.e. paper-roster — order).
func discoverRoster(ctx context.Context, cl *crawler.Client, pageIDs []int64) ([]analysis.CrawlCampaign, error) {
	roster := make([]analysis.CrawlCampaign, len(pageIDs))
	for i, id := range pageIDs {
		doc, err := cl.Page(ctx, id)
		if err != nil {
			return nil, err
		}
		roster[i] = analysis.CrawlCampaign{
			ID:     campaignIDFromName(doc.Name, id),
			Page:   socialnet.PageID(id),
			Active: doc.LikeCount > 0,
		}
	}
	return roster, nil
}

// applyActiveOverrides forces campaigns named in the -active /
// -inactive lists to that state. The like-count heuristic cannot
// distinguish an active campaign that delivered zero likes from a
// never-delivered one — the operator, like the paper's authors, knows
// which campaigns they paid for and which scams never shipped.
func applyActiveOverrides(roster []analysis.CrawlCampaign, active, inactive string) {
	set := func(csv string, val bool) {
		for _, id := range strings.Split(csv, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			for i := range roster {
				if roster[i].ID == id {
					roster[i].Active = val
				}
			}
		}
	}
	set(active, true)
	set(inactive, false)
}

// campaignIDFromName extracts the campaign label from a honeypot page
// name's trailing parenthetical; pages named differently fall back to
// "page-<id>".
func campaignIDFromName(name string, id int64) string {
	if open := strings.LastIndexByte(name, '('); open >= 0 && strings.HasSuffix(name, ")") {
		if label := name[open+1 : len(name)-1]; label != "" {
			return label
		}
	}
	return fmt.Sprintf("page-%d", id)
}

// honeypotPages lists the store's honeypot (campaign) pages ascending.
func honeypotPages(store *socialnet.Store) []int64 {
	pids := store.HoneypotPages()
	out := make([]int64, len(pids))
	for i, pid := range pids {
		out[i] = int64(pid)
	}
	return out
}

// writeCheckpoint persists the crawl state atomically (tmp + fsync +
// rename) so a kill — or a power loss — mid-write can't corrupt or
// empty the resume file.
func writeCheckpoint(path string, ck crawler.Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	return socialnet.WriteFileDurable(path, data)
}
