package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/socialnet"
)

// runCrawl is the `likefraud crawl` subcommand: the §3 data collection
// as a concurrent, resumable pipeline. With no -url it builds the study
// world, serves it on a loopback listener, and crawls its own campaign
// pages — a self-contained end-to-end exercise of the HTTP + crawl
// stack. With -url it crawls an external API server (then -pages is
// required). -checkpoint makes the crawl resumable: the file is loaded
// if present, rewritten after every fully processed like window, and a
// crawl interrupted by SIGINT/SIGTERM picks up where it left off.
//
// -data-dir makes the self-served world itself durable: the first run
// builds it once, checkpoints it into the directory, and serves the
// reopened copy; later runs reopen it instead of rebuilding, so crawl
// checkpoints (stored in the same directory by default) always resume
// against the bit-identical world — cursors never go stale between
// runs.
func runCrawl(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("likefraud crawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "API base URL to crawl (default: build a study world and serve it in-process)")
	pagesFlag := fs.String("pages", "", "comma-separated page IDs to crawl (default: all campaign pages; required with -url)")
	seed := fs.Int64("seed", 2014, "random seed for the self-served study world")
	scale := fs.Float64("scale", 0.1, "self-served study scale in (0,1]")
	workers := fs.Int("workers", 8, "concurrent profile fetchers")
	batch := fs.Int("batch", 50, "profiles per batched /api/users request")
	interval := fs.Duration("interval", 0, "politeness spacing between requests (shared across workers)")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: loaded if present, rewritten as the crawl progresses (default with -data-dir: DIR/crawl-checkpoint.json)")
	dataDir := fs.String("data-dir", "", "durable directory for the self-served world: built once, reopened on later runs")
	out := fs.String("out", "", "write crawled profiles as JSON lines to this file")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *checkpoint == "" && *dataDir != "" {
		*checkpoint = filepath.Join(*dataDir, "crawl-checkpoint.json")
	}

	base := *url
	var pageIDs []int64
	if base == "" {
		store, pages, err := selfServedWorld(*dataDir, *seed, *scale, *quiet, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
		defer store.Close()
		pageIDs = pages
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
		hs := &http.Server{
			Handler:           api.NewServer(store, ""),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		if !*quiet {
			fmt.Fprintf(stderr, "platform served at %s\n", base)
		}
	} else if *pagesFlag == "" {
		fmt.Fprintln(stderr, "likefraud crawl: -pages is required with -url")
		return 2
	}
	if *pagesFlag != "" {
		pageIDs = pageIDs[:0]
		for _, part := range strings.Split(*pagesFlag, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(stderr, "likefraud crawl: bad page id %q\n", part)
				return 2
			}
			pageIDs = append(pageIDs, id)
		}
	}

	ccfg := crawler.DefaultConfig(base)
	ccfg.MinInterval = *interval
	cl, err := crawler.New(ccfg)
	if err != nil {
		fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
		return 1
	}

	var resume *crawler.Checkpoint
	if *checkpoint != "" {
		if data, err := os.ReadFile(*checkpoint); err == nil {
			var ck crawler.Checkpoint
			if err := json.Unmarshal(data, &ck); err != nil {
				fmt.Fprintf(stderr, "likefraud crawl: corrupt checkpoint %s: %v\n", *checkpoint, err)
				return 1
			}
			resume = &ck
			if !*quiet {
				fmt.Fprintf(stderr, "resuming: %d profiles already crawled\n", len(ck.Crawled))
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
	}

	var sink io.Writer = io.Discard
	if *out != "" {
		// A resumed crawl appends: the profiles already in the file are
		// exactly the ones the checkpoint will never re-emit.
		mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		if resume != nil {
			mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
		}
		f, err := os.OpenFile(*out, mode, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: %v\n", err)
			return 1
		}
		defer f.Close()
		sink = f
	}
	enc := json.NewEncoder(sink)

	pcfg := crawler.PipelineConfig{Workers: *workers, BatchSize: *batch}
	if *checkpoint != "" {
		pcfg.OnCheckpoint = func(ck crawler.Checkpoint) {
			if err := writeCheckpoint(*checkpoint, ck); err != nil && !*quiet {
				fmt.Fprintf(stderr, "likefraud crawl: checkpoint: %v\n", err)
			}
		}
	}
	pipe := crawler.NewPipeline(cl, pcfg, resume)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	profiles := 0
	perPage := map[int64]int{}
	crawlErr := pipe.Crawl(ctx, pageIDs, func(page int64, prof crawler.LikerProfile) error {
		// A failed write aborts the crawl before the user is marked
		// crawled, so nothing silently vanishes from the output.
		if err := enc.Encode(struct {
			Page int64 `json:"page"`
			crawler.LikerProfile
		}{page, prof}); err != nil {
			return fmt.Errorf("writing profile: %w", err)
		}
		profiles++
		perPage[page]++
		return nil
	})
	if *checkpoint != "" {
		if err := writeCheckpoint(*checkpoint, pipe.Checkpoint()); err != nil {
			fmt.Fprintf(stderr, "likefraud crawl: checkpoint: %v\n", err)
		}
	}
	if crawlErr != nil {
		fmt.Fprintf(stderr, "likefraud crawl: %v\n", crawlErr)
		if *checkpoint != "" {
			fmt.Fprintf(stderr, "progress saved to %s; rerun to resume\n", *checkpoint)
		}
		return 1
	}

	var ids []int64
	for id := range perPage {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(stdout, "page %d: %d new likers\n", id, perPage[id])
	}
	fmt.Fprintf(stdout, "crawled %d profiles over %d pages in %s (%d requests, %d retries, %d workers)\n",
		profiles, len(pageIDs), time.Since(start).Round(time.Millisecond),
		cl.Requests(), cl.Retries(), *workers)
	return 0
}

// selfServedWorld produces the store the subcommand serves to itself,
// plus the campaign (honeypot) page IDs to crawl. Without -data-dir it
// builds and runs the study in memory, as before. With -data-dir it
// reopens the persisted world when one exists; otherwise it builds the
// world, checkpoints it, and serves the durably reopened copy — so the
// first run and every resume see the identical canonical like streams.
func selfServedWorld(dataDir string, seed int64, scale float64, quiet bool, stderr io.Writer) (*socialnet.Store, []int64, error) {
	buildWorld := func() (*socialnet.Store, error) {
		if !quiet {
			fmt.Fprintf(stderr, "building world and running campaigns (seed %d, scale %.2f)...\n", seed, scale)
		}
		cfg, err := core.ScaledConfig(seed, scale)
		if err != nil {
			return nil, err
		}
		study, err := core.NewStudy(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := study.Run(); err != nil {
			return nil, err
		}
		return study.Store(), nil
	}
	if dataDir == "" {
		store, err := buildWorld()
		if err != nil {
			return nil, nil, err
		}
		return store, honeypotPages(store), nil
	}
	resuming := socialnet.HasDurableState(dataDir)
	store, stats, err := socialnet.OpenOrCreate(dataDir, socialnet.WALOptions{}, buildWorld)
	if err != nil {
		return nil, nil, err
	}
	if !quiet {
		if resuming {
			fmt.Fprintf(stderr, "reopened world from %s (%d users, %d pages, %d WAL tail events)\n",
				dataDir, store.NumUsers(), store.NumPages(), stats.TailEvents)
		} else {
			fmt.Fprintf(stderr, "world persisted to %s\n", dataDir)
		}
	}
	return store, honeypotPages(store), nil
}

// honeypotPages lists the store's honeypot (campaign) pages ascending.
func honeypotPages(store *socialnet.Store) []int64 {
	pids := store.HoneypotPages()
	out := make([]int64, len(pids))
	for i, pid := range pids {
		out[i] = int64(pid)
	}
	return out
}

// writeCheckpoint persists the crawl state atomically (tmp + fsync +
// rename) so a kill — or a power loss — mid-write can't corrupt or
// empty the resume file.
func writeCheckpoint(path string, ck crawler.Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	return socialnet.WriteFileDurable(path, data)
}
