package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1Smoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet", "-artifact", "table1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"FB-USA", "SF-ALL", "MS-USA"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table1 output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet", "-artifact", "table1", "-outdir", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"table1_campaigns.csv", "results.json", "figure3a_direct.dot"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("artifact %s missing: %v", name, err)
		}
	}
}

func TestRunRejectsUnknownArtifact(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "0.05", "-quiet", "-artifact", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRunCrawlSmoke runs the self-serving crawl subcommand end to end:
// build a scaled study world, serve it on loopback, crawl every
// campaign page through the pipeline, write profiles and a checkpoint.
// A second run from the checkpoint must find nothing left to crawl.
func TestRunCrawlSmoke(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "crawl.ckpt")
	outFile := filepath.Join(dir, "profiles.jsonl")
	args := []string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-checkpoint", ckpt, "-out", outFile, "-quiet"}
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "crawled ") {
		t.Fatalf("missing summary:\n%s", out.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines < 10 {
		t.Fatalf("only %d profile lines written", lines)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}

	var resumed, errOut2 bytes.Buffer
	if code := run(args, &resumed, &errOut2); code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, errOut2.String())
	}
	if !strings.Contains(resumed.String(), "crawled 0 profiles") {
		t.Fatalf("resume should crawl nothing:\n%s", resumed.String())
	}
}

// TestRunCrawlTuningFlags drives the crawl with every limiter tuning
// flag set — the AIMD bounds, the -min-interval alias, -backoff-cap,
// and the sequential-engine fallback — and checks they parse, plumb
// through crawler.Config validation, and still produce a full crawl.
func TestRunCrawlTuningFlags(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "profiles.jsonl")
	args := []string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-min-interval", "200us", "-backoff-cap", "500ms",
		"-adaptive", "-adaptive-floor", "50us", "-adaptive-ceil", "1s",
		"-adaptive-step", "100us", "-adaptive-window", "4", "-adaptive-backoff", "1.5",
		"-out", outFile, "-quiet"}
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "throttled") || !strings.Contains(out.String(), "final interval") {
		t.Fatalf("summary missing limiter counters:\n%s", out.String())
	}

	// The static fallback engine and fixed spacing still work.
	args = []string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-adaptive=false", "-sequential", "-interval", "100us", "-quiet"}
	out.Reset()
	errOut.Reset()
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("sequential exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "crawled ") {
		t.Fatalf("missing summary:\n%s", out.String())
	}

	// A nonsense adaptive-backoff must be rejected by config validation.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"crawl", "-seed", "3", "-scale", "0.05",
		"-adaptive-backoff", "0.5", "-quiet"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for adaptive-backoff < 1; stderr: %s", code, errOut.String())
	}
}

func TestRunCrawlRequiresPagesWithURL(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"crawl", "-url", "http://127.0.0.1:1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "7"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestRunCrawlDataDir: with -data-dir the self-served world is durable —
// the first run builds and persists it, the second reopens it (no
// rebuild) and, resuming from the checkpoint stored in the same
// directory, finds nothing left to crawl.
func TestRunCrawlDataDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-data-dir", dir}
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "world persisted to") {
		t.Fatalf("first run did not persist the world:\n%s", errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "crawl-checkpoint.json")); err != nil {
		t.Fatalf("default checkpoint in data dir: %v", err)
	}

	var out2, errOut2 bytes.Buffer
	if code := run(args, &out2, &errOut2); code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, errOut2.String())
	}
	if !strings.Contains(errOut2.String(), "reopened world from") {
		t.Fatalf("second run rebuilt instead of reopening:\n%s", errOut2.String())
	}
	if !strings.Contains(out2.String(), "crawled 0 profiles") {
		t.Fatalf("resume against reopened world should crawl nothing:\n%s", out2.String())
	}
}

// TestCrawlAnalyzeMatchesJournalTables is the command-level half of
// the equivalence guarantee: `likefraud crawl -analyze` (self-served
// world, roster discovered from page names, baseline re-derived from
// the seed) writes byte-identical §4 table JSON to `likefraud -tables`
// (journal engine) for the same seed and scale.
func TestCrawlAnalyzeMatchesJournalTables(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal-tables.json")
	crawl := filepath.Join(dir, "crawl-tables.json")

	var out, errOut bytes.Buffer
	if code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet",
		"-artifact", "table1", "-tables", journal}, &out, &errOut); code != 0 {
		t.Fatalf("journal run exit %d, stderr: %s", code, errOut.String())
	}
	var cOut, cErr bytes.Buffer
	if code := run([]string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-analyze", "-tables", crawl, "-quiet"}, &cOut, &cErr); code != 0 {
		t.Fatalf("crawl -analyze exit %d, stderr: %s", code, cErr.String())
	}
	want, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(crawl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("crawl-derived tables differ from journal tables\ncrawl:   %.400s\njournal: %.400s", got, want)
	}
	if !strings.Contains(cOut.String(), "wrote §4 tables") {
		t.Fatalf("missing tables summary:\n%s", cOut.String())
	}
}

// TestCrawlAnalyzeResumeKeepsTables: a crawl with -analyze resumed
// from a checkpoint (here: a completed one — nothing left to crawl)
// still writes the full tables, because the aggregator state rides the
// checkpoint instead of living only in the crawling process.
func TestCrawlAnalyzeResumeKeepsTables(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "crawl.ckpt")
	tables := filepath.Join(dir, "crawl-tables.json")
	args := []string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-analyze", "-tables", tables, "-checkpoint", ckpt, "-quiet"}
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	want, err := os.ReadFile(tables)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(tables); err != nil {
		t.Fatal(err)
	}
	var rOut, rErr bytes.Buffer
	if code := run(args, &rOut, &rErr); code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, rErr.String())
	}
	if !strings.Contains(rOut.String(), "crawled 0 profiles") {
		t.Fatalf("resume should crawl nothing:\n%s", rOut.String())
	}
	got, err := os.ReadFile(tables)
	if err != nil {
		t.Fatalf("resumed run did not rewrite tables: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed tables differ from original run")
	}
}

// TestCrawlResumeWithoutAnalyzeRefuses: a checkpoint carrying
// aggregator state must not be resumed sink-less — rewriting it would
// silently drop the §4 analysis progress.
func TestCrawlResumeWithoutAnalyzeRefuses(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "crawl.ckpt")
	var out, errOut bytes.Buffer
	if code := run([]string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-analyze", "-tables", filepath.Join(dir, "t.json"), "-checkpoint", ckpt, "-quiet"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	before, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	var rOut, rErr bytes.Buffer
	if code := run([]string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-checkpoint", ckpt, "-quiet"}, &rOut, &rErr); code != 1 {
		t.Fatalf("sink-less resume exit %d, want 1 (refusal); stderr: %s", code, rErr.String())
	}
	if !strings.Contains(rErr.String(), "resume with -analyze") {
		t.Fatalf("missing refusal message:\n%s", rErr.String())
	}
	after, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("refused resume still rewrote the checkpoint")
	}
}

// TestRunWritesFraudReport pins the -fraud file format: the batch fraud
// report as compact JSON with a trailing newline — the exact bytes the
// live service answers on GET /api/fraud (see the api package's
// TestBatchFraudReportMatchesLive for the in-process equivalence pin).
func TestRunWritesFraudReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fraud.json")
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet", "-artifact", "table1", "-fraud", path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("fraud report must end with a single trailing newline")
	}
	if bytes.ContainsAny(bytes.TrimSuffix(data, []byte("\n")), "\n") {
		t.Fatal("fraud report body must be compact single-line JSON")
	}
	var doc struct {
		Pages []struct {
			Page     int64 `json:"page"`
			Likers   int   `json:"likers"`
			HighRisk int   `json:"high_risk"`
		} `json:"pages"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("fraud report is not valid JSON: %v", err)
	}
	if len(doc.Pages) == 0 {
		t.Fatal("fraud report covers no pages")
	}
	likers, highRisk := 0, 0
	for _, p := range doc.Pages {
		likers += p.Likers
		highRisk += p.HighRisk
	}
	if likers == 0 || highRisk == 0 {
		t.Fatalf("fraud report scored %d likers, %d high-risk — campaigns buy fake likes, both must be positive", likers, highRisk)
	}
}
