package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1Smoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet", "-artifact", "table1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"FB-USA", "SF-ALL", "MS-USA"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table1 output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet", "-artifact", "table1", "-outdir", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"table1_campaigns.csv", "results.json", "figure3a_direct.dot"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("artifact %s missing: %v", name, err)
		}
	}
}

func TestRunRejectsUnknownArtifact(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "0.05", "-quiet", "-artifact", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "7"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
