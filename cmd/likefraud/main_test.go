package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1Smoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet", "-artifact", "table1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"FB-USA", "SF-ALL", "MS-USA"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table1 output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run([]string{"-seed", "3", "-scale", "0.05", "-quiet", "-artifact", "table1", "-outdir", dir}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"table1_campaigns.csv", "results.json", "figure3a_direct.dot"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("artifact %s missing: %v", name, err)
		}
	}
}

func TestRunRejectsUnknownArtifact(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "0.05", "-quiet", "-artifact", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRunCrawlSmoke runs the self-serving crawl subcommand end to end:
// build a scaled study world, serve it on loopback, crawl every
// campaign page through the pipeline, write profiles and a checkpoint.
// A second run from the checkpoint must find nothing left to crawl.
func TestRunCrawlSmoke(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "crawl.ckpt")
	outFile := filepath.Join(dir, "profiles.jsonl")
	args := []string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-checkpoint", ckpt, "-out", outFile, "-quiet"}
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "crawled ") {
		t.Fatalf("missing summary:\n%s", out.String())
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines < 10 {
		t.Fatalf("only %d profile lines written", lines)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}

	var resumed, errOut2 bytes.Buffer
	if code := run(args, &resumed, &errOut2); code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, errOut2.String())
	}
	if !strings.Contains(resumed.String(), "crawled 0 profiles") {
		t.Fatalf("resume should crawl nothing:\n%s", resumed.String())
	}
}

func TestRunCrawlRequiresPagesWithURL(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"crawl", "-url", "http://127.0.0.1:1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "7"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

// TestRunCrawlDataDir: with -data-dir the self-served world is durable —
// the first run builds and persists it, the second reopens it (no
// rebuild) and, resuming from the checkpoint stored in the same
// directory, finds nothing left to crawl.
func TestRunCrawlDataDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"crawl", "-seed", "3", "-scale", "0.05", "-workers", "4",
		"-data-dir", dir}
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "world persisted to") {
		t.Fatalf("first run did not persist the world:\n%s", errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "crawl-checkpoint.json")); err != nil {
		t.Fatalf("default checkpoint in data dir: %v", err)
	}

	var out2, errOut2 bytes.Buffer
	if code := run(args, &out2, &errOut2); code != 0 {
		t.Fatalf("resume exit %d, stderr: %s", code, errOut2.String())
	}
	if !strings.Contains(errOut2.String(), "reopened world from") {
		t.Fatalf("second run rebuilt instead of reopening:\n%s", errOut2.String())
	}
	if !strings.Contains(out2.String(), "crawled 0 profiles") {
		t.Fatalf("resume against reopened world should crawl nothing:\n%s", out2.String())
	}
}
