// Command likefraud runs the full honeypot study reproduction and prints
// every table and figure of the paper's evaluation.
//
// Usage:
//
//	likefraud [-seed N] [-scale S] [-workers W] [-artifact all|table1|table2|table3|fig1|fig2|fig3|fig4|fig5|removed|econ] [-outdir DIR] [-fraud FILE]
//	likefraud crawl [-url BASE[,BASE2,...] -pages IDS] [-workers W] [-checkpoint FILE] [-out FILE]
//	likefraud crawl -shard i/n -analyze -sink-out FILE ...
//	likefraud merge [-tables OUT] shard1.json shard2.json ...
//
// The crawl subcommand runs the §3 data collection through the
// concurrent, resumable crawl pipeline — see crawl.go. With -shard it
// crawls one hash-slice of the study (targeting read replicas via a
// comma-separated -url list) and exports its aggregator state; merge
// folds the shard exports back into the single-process §4 tables.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command: dispatch subcommands, parse
// flags, run the study, render the requested artifact. It returns the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "crawl" {
		return runCrawl(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "merge" {
		return runMerge(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("likefraud", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 2014, "random seed (runs are deterministic per seed)")
	scale := fs.Float64("scale", 1.0, "study scale in (0,1]")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = serial)")
	artifact := fs.String("artifact", "all", "which artifact to print: all, table1, table2, table3, fig1..fig5, removed, econ")
	outdir := fs.String("outdir", "", "also write CSV/DOT/JSON artifacts to this directory")
	tables := fs.String("tables", "", "write the crawl-comparable §4 table JSON (geo, demo, windows, CDFs, Jaccard) to this file")
	fraud := fs.String("fraud", "", "write the batch fraud report JSON (byte-comparable with honeypotd's GET /api/fraud) to this file")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	start := time.Now()
	if !*quiet {
		fmt.Fprintf(stderr, "building world and running 13 campaigns (seed %d, scale %.2f)...\n", *seed, *scale)
	}
	cfg, err := core.ScaledConfig(*seed, *scale)
	if err != nil {
		fmt.Fprintf(stderr, "likefraud: %v\n", err)
		return 1
	}
	cfg.Workers = *workers
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "likefraud: %v\n", err)
		return 1
	}
	res, err := study.Run()
	if err != nil {
		fmt.Fprintf(stderr, "likefraud: %v\n", err)
		return 1
	}
	if !*quiet {
		fmt.Fprintf(stderr, "done in %s (%d cover likes materialized)\n",
			time.Since(start).Round(time.Millisecond), res.HistoryLikes)
	}
	if *tables != "" {
		// The same table set `likefraud crawl -analyze` produces from an
		// HTTP crawl — the two files are byte-comparable on one world.
		t := res.CrawlTables()
		data, err := t.MarshalStable()
		if err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*tables, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
	}
	if *fraud != "" {
		// The same report the live service answers on GET /api/fraud —
		// compact JSON plus a trailing newline, so the two are
		// byte-comparable on one world (the CI equivalence smoke runs
		// cmp over them).
		doc, err := api.BatchFraudReport(study.Store(), *workers)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
		data, err := json.Marshal(doc)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if err := os.WriteFile(*fraud, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
	}
	if *outdir != "" {
		files, err := res.WriteArtifacts(*outdir)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
		dots, err := study.WriteFigure3DOT(res, *outdir)
		if err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
		if _, err := res.WriteJSON(*outdir); err != nil {
			fmt.Fprintf(stderr, "likefraud: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stderr, "wrote %d artifacts to %s\n", len(files)+len(dots)+1, *outdir)
		}
	}

	switch strings.ToLower(*artifact) {
	case "all":
		fmt.Fprintln(stdout, res.RenderAll())
	case "table1":
		fmt.Fprintln(stdout, res.RenderTable1())
	case "table2":
		fmt.Fprintln(stdout, res.RenderTable2())
	case "table3":
		fmt.Fprintln(stdout, res.RenderTable3())
	case "fig1":
		fmt.Fprintln(stdout, res.RenderFigure1())
	case "fig2":
		fmt.Fprintln(stdout, res.RenderFigure2())
	case "fig3":
		fmt.Fprintln(stdout, res.RenderFigure3())
	case "fig4":
		fmt.Fprintln(stdout, res.RenderFigure4())
	case "fig5":
		fmt.Fprintln(stdout, res.RenderFigure5())
	case "removed":
		fmt.Fprintln(stdout, res.RenderRemovedLikes())
	case "econ":
		fmt.Fprintln(stdout, res.RenderEconomics())
	default:
		fmt.Fprintf(stderr, "likefraud: unknown artifact %q\n", *artifact)
		return 2
	}
	return 0
}
