// Command likefraud runs the full honeypot study reproduction and prints
// every table and figure of the paper's evaluation.
//
// Usage:
//
//	likefraud [-seed N] [-artifact all|table1|table2|table3|fig1|fig2|fig3|fig4|fig5] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	seed := flag.Int64("seed", 2014, "random seed (runs are deterministic per seed)")
	scale := flag.Float64("scale", 1.0, "study scale in (0,1]")
	artifact := flag.String("artifact", "all", "which artifact to print: all, table1, table2, table3, fig1..fig5, removed, econ")
	outdir := flag.String("outdir", "", "also write CSV/DOT artifacts to this directory")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	start := time.Now()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "building world and running 13 campaigns (seed %d, scale %.2f)...\n", *seed, *scale)
	}
	cfg, err := core.ScaledConfig(*seed, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "likefraud: %v\n", err)
		os.Exit(1)
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "likefraud: %v\n", err)
		os.Exit(1)
	}
	res, err := study.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "likefraud: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "done in %s (%d cover likes materialized)\n",
			time.Since(start).Round(time.Millisecond), res.HistoryLikes)
	}
	if *outdir != "" {
		files, err := res.WriteArtifacts(*outdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "likefraud: %v\n", err)
			os.Exit(1)
		}
		dots, err := study.WriteFigure3DOT(res, *outdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "likefraud: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %d artifacts to %s\n", len(files)+len(dots), *outdir)
		}
	}

	switch strings.ToLower(*artifact) {
	case "all":
		fmt.Println(res.RenderAll())
	case "table1":
		fmt.Println(res.RenderTable1())
	case "table2":
		fmt.Println(res.RenderTable2())
	case "table3":
		fmt.Println(res.RenderTable3())
	case "fig1":
		fmt.Println(res.RenderFigure1())
	case "fig2":
		fmt.Println(res.RenderFigure2())
	case "fig3":
		fmt.Println(res.RenderFigure3())
	case "fig4":
		fmt.Println(res.RenderFigure4())
	case "fig5":
		fmt.Println(res.RenderFigure5())
	case "removed":
		fmt.Println(res.RenderRemovedLikes())
	case "econ":
		fmt.Println(res.RenderEconomics())
	default:
		fmt.Fprintf(os.Stderr, "likefraud: unknown artifact %q\n", *artifact)
		os.Exit(2)
	}
}
