package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/socialnet"
)

// monitorStateFile holds the live monitor's per-page journal cursors
// inside the data dir.
const monitorStateFile = "monitors.json"

// liveMonitor is the serving-time analogue of honeypot.Monitor: it
// polls every honeypot page's append-only like stream on real time
// (the study-time monitors run on the virtual clock and are long done
// by the time honeypotd serves), advancing one journal cursor per page
// and persisting the cursor map so a restarted daemon reports each
// injected like exactly once instead of recounting history.
type liveMonitor struct {
	store *socialnet.Store
	path  string
	out   io.Writer
	pages []socialnet.PageID

	mu      sync.Mutex
	cursors map[socialnet.PageID]int

	stopc chan struct{}
	done  chan struct{}
}

// monitorState is the JSON form of the cursor map (string keys — JSON
// objects cannot key on integers).
type monitorState struct {
	Cursors map[string]int `json:"cursors"`
}

// newLiveMonitor discovers the store's honeypot pages and loads any
// persisted cursors, reporting likes that arrived while the daemon was
// down (the gap between the saved cursor and the stream's tail).
// tailByPage is the recovery's per-page WAL-tail count (OpenStats):
// saved cursors are only trustworthy up to the snapshot-covered prefix
// — tail replay can reorder a stream's tail relative to the live
// arrival order the cursor was measured against — so cursors are
// clamped below the tail and the tail is re-observed (at-least-once;
// a like is re-reported rather than ever missed).
func newLiveMonitor(store *socialnet.Store, path string, out io.Writer, tailByPage map[socialnet.PageID]int) (*liveMonitor, error) {
	m := &liveMonitor{
		store:   store,
		path:    path,
		out:     out,
		pages:   store.HoneypotPages(),
		cursors: make(map[socialnet.PageID]int),
		stopc:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// First start: begin at each stream's current tail — the world
		// build's own likes are history, not live observations.
		for _, pid := range m.pages {
			m.cursors[pid] = store.LikeCountOfPage(pid)
		}
	case err != nil:
		return nil, err
	default:
		var st monitorState
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("corrupt %s: %w", path, err)
		}
		for k, v := range st.Cursors {
			id, err := strconv.ParseInt(k, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("corrupt %s: page key %q", path, k)
			}
			// Clamp to the snapshot-covered prefix of the rebuilt
			// stream. Beyond it the cursor cannot be trusted: a crash
			// inside the batched-fsync window can have LOST events the
			// monitor observed (cursor past the tail), and WAL-tail
			// replay can REORDER surviving events relative to the live
			// order the cursor was measured against. Pulling the cursor
			// back re-reports the boundary instead of ever skipping a
			// like.
			pid := socialnet.PageID(id)
			if bound := store.LikeCountOfPage(pid) - tailByPage[pid]; v > bound {
				fmt.Fprintf(out, "monitor: page %d cursor %d beyond snapshot-covered prefix (%d), clamping\n", pid, v, bound)
				v = bound
			}
			m.cursors[pid] = v
		}
		if n := m.poll(); n > 0 {
			fmt.Fprintf(out, "monitor: %d likes arrived across the restart\n", n)
		}
	}
	return m, m.save()
}

// poll advances every page cursor to its stream tail and returns how
// many new like events were observed.
func (m *liveMonitor) poll() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, pid := range m.pages {
		batch, next := m.store.PageEventsSince(pid, m.cursors[pid])
		if len(batch) > 0 {
			m.cursors[pid] = next
			total += len(batch)
		}
	}
	return total
}

// save persists the cursor map atomically (tmp + rename).
func (m *liveMonitor) save() error {
	m.mu.Lock()
	st := monitorState{Cursors: make(map[string]int, len(m.cursors))}
	for pid, c := range m.cursors {
		st.Cursors[strconv.FormatInt(int64(pid), 10)] = c
	}
	m.mu.Unlock()
	data, err := json.MarshalIndent(&st, "", " ")
	if err != nil {
		return err
	}
	return socialnet.WriteFileDurable(m.path, data)
}

// start launches the polling loop; the returned function stops it (it
// is safe to call alongside stopAndSave — both are idempotent). A
// non-positive interval disables periodic polling: cursors still
// advance on startup and shutdown observations.
func (m *liveMonitor) start(interval time.Duration) func() {
	if interval <= 0 {
		close(m.done)
		return m.stopAndSave
	}
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stopc:
				return
			case <-t.C:
				if n := m.poll(); n > 0 {
					fmt.Fprintf(m.out, "monitor: %d new likes\n", n)
					if err := m.save(); err != nil {
						fmt.Fprintf(m.out, "monitor: save cursors: %v\n", err)
					}
				}
			}
		}
	}()
	return m.stopAndSave
}

// stopAndSave halts polling, takes a final observation, and persists
// the cursors.
func (m *liveMonitor) stopAndSave() {
	select {
	case <-m.stopc:
	default:
		close(m.stopc)
	}
	<-m.done
	m.poll()
	if err := m.save(); err != nil {
		fmt.Fprintf(m.out, "monitor: save cursors: %v\n", err)
	}
}
