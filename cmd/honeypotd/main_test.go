package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/socialnet"
)

// serveOnce runs the command with a serve function that captures the
// handler instead of listening, and returns an httptest server over it.
func serveOnce(t *testing.T, args []string) (*httptest.Server, *bytes.Buffer) {
	t.Helper()
	var stderr bytes.Buffer
	var captured http.Handler
	code := run(args, &stderr, func(addr string, h http.Handler, maxConns int) error {
		captured = h
		return nil
	})
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if captured == nil {
		t.Fatal("serve was never called")
	}
	ts := httptest.NewServer(captured)
	t.Cleanup(ts.Close)
	return ts, &stderr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeBuiltWorld(t *testing.T) {
	ts, stderr := serveOnce(t, []string{"-seed", "3", "-scale", "0.05"})
	if code, _ := get(t, ts.URL+"/api/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get(t, ts.URL+"/api/directory"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("directory = %d (%d bytes)", code, len(body))
	}
	if code, _ := get(t, ts.URL+"/api/page/1"); code != http.StatusOK {
		t.Fatalf("page 1 = %d", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("world ready")) {
		t.Fatalf("stderr missing build progress: %s", stderr.String())
	}
}

func TestSnapshotSaveAndLoadRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "world.gob")
	serveOnce(t, []string{"-seed", "3", "-scale", "0.05", "-save", snap})

	ts, stderr := serveOnce(t, []string{"-load", snap})
	if code, _ := get(t, ts.URL+"/api/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after load = %d", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("loaded world snapshot")) {
		t.Fatalf("stderr missing load line: %s", stderr.String())
	}
}

// TestServeLiveFraudSurface covers the in-memory (no -data-dir) scorer
// path: the fraud endpoints serve live verdicts for the built world.
func TestServeLiveFraudSurface(t *testing.T) {
	ts, _ := serveOnce(t, []string{"-seed", "3", "-scale", "0.05", "-token", "tk", "-max-conns", "64"})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/fraud", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Admin-Token", "tk")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fraud report = %d", resp.StatusCode)
	}
	var doc struct {
		Pages []struct {
			Page     int64 `json:"page"`
			Likers   int   `json:"likers"`
			Verdicts []struct {
				Score float64 `json:"score"`
			} `json:"verdicts"`
		} `json:"pages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Pages) == 0 {
		t.Fatal("fraud report covers no pages")
	}
	likers := 0
	for _, p := range doc.Pages {
		likers += p.Likers
	}
	if likers == 0 {
		t.Fatal("fraud report has no scored likers")
	}
}

func TestBadScaleFails(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-scale", "9"}, &stderr, func(string, http.Handler, int) error { return nil })
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stderr bytes.Buffer
	done := make(chan error, 1)
	addr := "127.0.0.1:0"
	go func() {
		done <- serveGraceful(ctx, addr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}), 4, &stderr)
	}()
	// Let the listener come up, then signal shutdown.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within 5s")
	}
	if !bytes.Contains(stderr.Bytes(), []byte("draining")) {
		t.Fatalf("stderr missing drain notice: %s", stderr.String())
	}
}

func TestServeGracefulBadAddr(t *testing.T) {
	var stderr bytes.Buffer
	err := serveGraceful(context.Background(), "256.256.256.256:99999", http.NotFoundHandler(), 0, &stderr)
	if err == nil {
		t.Fatal("bad address should fail to listen")
	}
}

// TestDataDirResume is the restart contract: a world served from
// -data-dir, with likes injected over the API, must come back after a
// restart with those likes (and the monitor cursors) intact — and must
// resume rather than rebuild.
func TestDataDirResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-seed", "3", "-scale", "0.05", "-token", "tk",
		"-data-dir", dir, "-sync-every", "1", "-monitor-poll", "10ms"}

	var pageID string
	var before, after int
	var likerID int

	// First run: find a honeypot page, inject two likes, shut down
	// gracefully (serve returning simulates the drained server).
	runOnce(t, args, func(addr string, h http.Handler, maxConns int) error {
		ts := httptest.NewServer(h)
		defer ts.Close()
		pageID = firstHoneypotPage(t, ts.URL)
		before = likeCount(t, ts.URL, pageID)
		injected := 0
		for uid := 1; uid <= 50 && injected < 2; uid++ {
			code := postLike(t, ts.URL, pageID, "tk", uid)
			switch code {
			case http.StatusCreated:
				injected++
				likerID = uid
			case http.StatusConflict, http.StatusForbidden:
				// already a liker, or terminated: try the next user
			default:
				t.Fatalf("inject like: status %d", code)
			}
		}
		if injected != 2 {
			t.Fatalf("could not inject 2 likes (got %d)", injected)
		}
		return nil
	})

	// Second run must resume (not rebuild) and still hold the likes —
	// and the fraud scorer must resume its cursor and already know the
	// injected liker.
	stderr := runOnce(t, args, func(addr string, h http.Handler, maxConns int) error {
		ts := httptest.NewServer(h)
		defer ts.Close()
		after = likeCount(t, ts.URL, pageID)
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/api/user/%d/fraud", ts.URL, likerID), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Admin-Token", "tk")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fraud verdict for injected liker = %d", resp.StatusCode)
		}
		return nil
	})
	if !bytes.Contains(stderr.Bytes(), []byte("resumed world from")) {
		t.Fatalf("second run did not resume; stderr:\n%s", stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("scorer: resumed at")) {
		t.Fatalf("second run did not resume the scorer cursor; stderr:\n%s", stderr.String())
	}
	if after != before+2 {
		t.Fatalf("like count after restart = %d, want %d", after, before+2)
	}
	// Monitor cursors and scorer state persisted alongside the world.
	if _, err := os.Stat(filepath.Join(dir, "monitors.json")); err != nil {
		t.Fatalf("monitor cursor file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, scorerStateFile)); err != nil {
		t.Fatalf("scorer state file: %v", err)
	}
}

func runOnce(t *testing.T, args []string, serve func(string, http.Handler, int) error) *bytes.Buffer {
	t.Helper()
	var stderr bytes.Buffer
	if code := run(args, &stderr, serve); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	return &stderr
}

func firstHoneypotPage(t *testing.T, base string) string {
	t.Helper()
	// Page IDs are dense (1..N); honeypot pages deploy last, so binary
	// search the max ID and scan down.
	exists := func(id int) bool {
		code, _ := get(t, fmt.Sprintf("%s/api/page/%d", base, id))
		return code == http.StatusOK
	}
	hi := 1
	for exists(hi) {
		hi *= 2
	}
	lo := hi / 2
	for lo+1 < hi { // invariant: exists(lo) && !exists(hi)
		mid := (lo + hi) / 2
		if exists(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	for id := lo; id > 0 && id > lo-50; id-- {
		code, body := get(t, fmt.Sprintf("%s/api/page/%d", base, id))
		if code == http.StatusOK && strings.Contains(body, `"honeypot":true`) {
			return strconv.Itoa(id)
		}
	}
	t.Fatal("no honeypot page found")
	return ""
}

func likeCount(t *testing.T, base, page string) int {
	t.Helper()
	code, body := get(t, base+"/api/page/"+page)
	if code != http.StatusOK {
		t.Fatalf("page fetch: %d", code)
	}
	var doc struct {
		LikeCount int `json:"like_count"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.LikeCount
}

func postLike(t *testing.T, base, page, token string, user int) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, fmt.Sprintf("%s/api/page/%s/likes", base, page),
		strings.NewReader(fmt.Sprintf(`{"user": %d}`, user)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Admin-Token", token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// syncBuf is a bytes.Buffer safe for the follower's tail goroutine to
// write while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestFollowerAutoRebootstrap drives a live replica into a replication
// gap and checks the one-shot recovery: the follower re-bootstraps from
// the leader's current snapshot, atomically swaps its serving state
// under the listener, and keeps /api/healthz at 200 — while a SECOND
// gap is fatal and flips healthz to 503 with reads still served.
func TestFollowerAutoRebootstrap(t *testing.T) {
	// A durable leader with tiny WAL segments, so a checkpoint compacts
	// records away from under the follower's cursor.
	ldir := t.TempDir()
	lst := socialnet.NewShardedStore(2)
	var users []socialnet.UserID
	for i := 0; i < 6; i++ {
		users = append(users, lst.AddUser(socialnet.User{Country: "USA", Searchable: true}))
	}
	page, err := lst.AddPage(socialnet.Page{Name: "Honeypot", Honeypot: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lst.Checkpoint(ldir); err != nil {
		t.Fatal(err)
	}
	lst, _, err = socialnet.OpenDurable(ldir, socialnet.WALOptions{SyncInterval: -1, SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	base := time.Date(2014, 2, 1, 0, 0, 0, 0, time.UTC)

	// advance writes a burst of records and checkpoints, compacting the
	// chain below any cursor that has not yet fetched the burst.
	advance := func(round int) socialnet.UserID {
		t.Helper()
		var last socialnet.UserID
		var fresh []socialnet.UserID
		for i := 0; i < 40; i++ {
			last = lst.AddUser(socialnet.User{Country: "USA", Searchable: true})
			fresh = append(fresh, last)
		}
		for i := 0; i < 12; i++ {
			if err := lst.AddLike(fresh[i], page, base.Add(time.Duration(round*100+i)*time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
		if err := lst.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := lst.Checkpoint(ldir); err != nil {
			t.Fatal(err)
		}
		return last
	}

	// The leader's segment feed can be gated off (503 = transient, the
	// follower retries) so a write burst plus checkpoint lands while the
	// follower's cursor is guaranteed stale.
	var gate atomic.Bool
	leaderAPI := api.NewServer(lst, "sekrit")
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if gate.Load() && strings.HasPrefix(r.URL.Path, "/api/repl/segments") {
			http.Error(w, "maintenance", http.StatusServiceUnavailable)
			return
		}
		leaderAPI.ServeHTTP(w, r)
	}))
	defer leader.Close()

	stderr := &syncBuf{}
	handlerCh := make(chan http.Handler, 1)
	stopServe := make(chan struct{})
	followerDone := make(chan int, 1)
	go func() {
		followerDone <- runFollower(followerConfig{
			leaderURL:   leader.URL,
			leaderToken: "sekrit",
			pollEvery:   10 * time.Millisecond,
			dataDir:     filepath.Join(t.TempDir(), "replica"),
			addr:        "ignored",
			token:       "sekrit",
			syncInt:     -1,
		}, stderr, func(addr string, h http.Handler, maxConns int) error {
			handlerCh <- h
			<-stopServe
			return nil
		})
	}()
	var ts *httptest.Server
	select {
	case h := <-handlerCh:
		ts = httptest.NewServer(h)
	case code := <-followerDone:
		t.Fatalf("follower exited %d before serving: %s", code, stderr.String())
	}
	defer ts.Close()
	defer func() {
		close(stopServe)
		if code := <-followerDone; code != 0 {
			t.Errorf("follower exit code %d: %s", code, stderr.String())
		}
	}()

	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if ok() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s; follower stderr:\n%s", what, stderr.String())
	}
	healthz := func() int {
		code, _ := get(t, ts.URL+"/api/healthz")
		return code
	}
	if healthz() != http.StatusOK {
		t.Fatalf("fresh replica healthz = %d", healthz())
	}

	// Gap #1: burst + checkpoint behind the gate. The follower must
	// recover on its own — the post-gap user is only reachable through
	// the new snapshot, so serving it proves the store swap happened.
	gate.Store(true)
	newUser := advance(1)
	gate.Store(false)
	waitFor("auto re-bootstrap to serve post-gap user", func() bool {
		code, _ := get(t, fmt.Sprintf("%s/api/user/%d", ts.URL, newUser))
		return code == http.StatusOK
	})
	if healthz() != http.StatusOK {
		t.Fatalf("healthz after auto re-bootstrap = %d", healthz())
	}
	if !strings.Contains(stderr.String(), "re-bootstrapped") {
		t.Fatalf("no re-bootstrap logged:\n%s", stderr.String())
	}

	// Gap #2 is fatal: healthz flips to 503, reads still drain.
	gate.Store(true)
	advance(2)
	gate.Store(false)
	waitFor("second gap to mark the replica unhealthy", func() bool {
		return healthz() == http.StatusServiceUnavailable
	})
	if code, _ := get(t, fmt.Sprintf("%s/api/user/%d", ts.URL, newUser)); code != http.StatusOK {
		t.Fatalf("reads after dead tail = %d, want 200", code)
	}
}
