package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

// serveOnce runs the command with a serve function that captures the
// handler instead of listening, and returns an httptest server over it.
func serveOnce(t *testing.T, args []string) (*httptest.Server, *bytes.Buffer) {
	t.Helper()
	var stderr bytes.Buffer
	var captured http.Handler
	code := run(args, &stderr, func(addr string, h http.Handler) error {
		captured = h
		return nil
	})
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if captured == nil {
		t.Fatal("serve was never called")
	}
	ts := httptest.NewServer(captured)
	t.Cleanup(ts.Close)
	return ts, &stderr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeBuiltWorld(t *testing.T) {
	ts, stderr := serveOnce(t, []string{"-seed", "3", "-scale", "0.05"})
	if code, _ := get(t, ts.URL+"/api/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get(t, ts.URL+"/api/directory"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("directory = %d (%d bytes)", code, len(body))
	}
	if code, _ := get(t, ts.URL+"/api/page/1"); code != http.StatusOK {
		t.Fatalf("page 1 = %d", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("world ready")) {
		t.Fatalf("stderr missing build progress: %s", stderr.String())
	}
}

func TestSnapshotSaveAndLoadRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "world.gob")
	serveOnce(t, []string{"-seed", "3", "-scale", "0.05", "-save", snap})

	ts, stderr := serveOnce(t, []string{"-load", snap})
	if code, _ := get(t, ts.URL+"/api/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after load = %d", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("loaded world snapshot")) {
		t.Fatalf("stderr missing load line: %s", stderr.String())
	}
}

func TestBadScaleFails(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-scale", "9"}, &stderr, func(string, http.Handler) error { return nil })
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stderr bytes.Buffer
	done := make(chan error, 1)
	addr := "127.0.0.1:0"
	go func() {
		done <- serveGraceful(ctx, addr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}), &stderr)
	}()
	// Let the listener come up, then signal shutdown.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within 5s")
	}
	if !bytes.Contains(stderr.Bytes(), []byte("draining")) {
		t.Fatalf("stderr missing drain notice: %s", stderr.String())
	}
}

func TestServeGracefulBadAddr(t *testing.T) {
	var stderr bytes.Buffer
	err := serveGraceful(context.Background(), "256.256.256.256:99999", http.NotFoundHandler(), &stderr)
	if err == nil {
		t.Fatal("bad address should fail to listen")
	}
}
