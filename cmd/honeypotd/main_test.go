package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
)

// serveOnce runs the command with a serve function that captures the
// handler instead of listening, and returns an httptest server over it.
func serveOnce(t *testing.T, args []string) (*httptest.Server, *bytes.Buffer) {
	t.Helper()
	var stderr bytes.Buffer
	var captured http.Handler
	code := run(args, &stderr, func(addr string, h http.Handler) error {
		captured = h
		return nil
	})
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if captured == nil {
		t.Fatal("serve was never called")
	}
	ts := httptest.NewServer(captured)
	t.Cleanup(ts.Close)
	return ts, &stderr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeBuiltWorld(t *testing.T) {
	ts, stderr := serveOnce(t, []string{"-seed", "3", "-scale", "0.05"})
	if code, _ := get(t, ts.URL+"/api/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, body := get(t, ts.URL+"/api/directory"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("directory = %d (%d bytes)", code, len(body))
	}
	if code, _ := get(t, ts.URL+"/api/page/1"); code != http.StatusOK {
		t.Fatalf("page 1 = %d", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("world ready")) {
		t.Fatalf("stderr missing build progress: %s", stderr.String())
	}
}

func TestSnapshotSaveAndLoadRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "world.gob")
	serveOnce(t, []string{"-seed", "3", "-scale", "0.05", "-save", snap})

	ts, stderr := serveOnce(t, []string{"-load", snap})
	if code, _ := get(t, ts.URL+"/api/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after load = %d", code)
	}
	if !bytes.Contains(stderr.Bytes(), []byte("loaded world snapshot")) {
		t.Fatalf("stderr missing load line: %s", stderr.String())
	}
}

func TestBadScaleFails(t *testing.T) {
	var stderr bytes.Buffer
	code := run([]string{"-scale", "9"}, &stderr, func(string, http.Handler) error { return nil })
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
