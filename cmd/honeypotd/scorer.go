package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/detect"
	"repro/internal/socialnet"
)

// scorerStateFile holds the streaming fraud scorer's journal cursor and
// per-account feature state inside the data dir.
const scorerStateFile = "scorer.json"

// liveScorer runs the streaming fraud detector while the daemon serves:
// the detect.StreamScorer consumes the journal incrementally (O(new
// likes) per poll) and backs the admin /fraud endpoints with verdicts
// that always reflect the current stream.
//
// With a data dir, the scorer's state rides the checkpoint as a sidecar
// like the monitor's cursors: per-shard journal offsets plus the folded
// per-account features, written durably (tmp + fsync + rename) after
// every observing poll and at shutdown. Across a restart the state is
// restored through detect.RestoreStreamScorer, whose validation rejects
// anything the journal can no longer back (a crash that lost an
// unsynced tail, a changed shard layout); rejection falls back to a
// fresh scorer and a full rescan — slower, never wrong. Unlike the
// monitor's per-page cursors, no tail clamping is needed: per-shard
// offsets are the journal's native replication coordinate, and the
// fold state is a pure function of the consumed per-user event
// multisets, which per-shard prefixes pin exactly.
type liveScorer struct {
	scorer *detect.StreamScorer
	path   string // empty: in-memory only (no -data-dir)
	out    io.Writer

	stopc chan struct{}
	done  chan struct{}
}

// newLiveScorer restores (or freshly builds) the scorer and catches it
// up on the whole journal — unlike the live monitor, the world build's
// own likes are exactly what the detector must score, so a first start
// consumes the stream from offset zero.
func newLiveScorer(store *socialnet.Store, path string, out io.Writer) *liveScorer {
	s := &liveScorer{path: path, out: out, stopc: make(chan struct{}), done: make(chan struct{})}
	cfg := detect.StreamScorerConfig{}
	if path != "" {
		data, err := os.ReadFile(path)
		switch {
		case os.IsNotExist(err):
			// First start.
		case err != nil:
			fmt.Fprintf(out, "scorer: read %s: %v; rescanning journal\n", path, err)
		default:
			sc, rerr := detect.RestoreStreamScorer(store, cfg, data)
			if rerr != nil {
				fmt.Fprintf(out, "scorer: %v; rescanning journal\n", rerr)
			} else {
				s.scorer = sc
				fmt.Fprintf(out, "scorer: resumed at %d consumed journal events\n", sc.Offset())
			}
		}
	}
	if s.scorer == nil {
		s.scorer = detect.NewStreamScorer(store, cfg)
	}
	if n := s.scorer.Tick(); n > 0 {
		fmt.Fprintf(out, "scorer: caught up on %d journal events (%d accounts enrolled)\n",
			n, len(s.scorer.Accounts()))
	}
	s.save()
	return s
}

// save persists the scorer state durably; without a data dir it is a
// no-op.
func (s *liveScorer) save() {
	if s.path == "" {
		return
	}
	data, err := s.scorer.MarshalState()
	if err == nil {
		err = socialnet.WriteFileDurable(s.path, data)
	}
	if err != nil {
		fmt.Fprintf(s.out, "scorer: save state: %v\n", err)
	}
}

// start launches the polling loop; the returned function stops it (safe
// alongside stopAndSave — both are idempotent). A non-positive interval
// disables periodic polling: the scorer still advances on the startup
// catch-up, on every /fraud request (the API ticks on demand), and at
// shutdown.
func (s *liveScorer) start(interval time.Duration) func() {
	if interval <= 0 {
		close(s.done)
		return s.stopAndSave
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stopc:
				return
			case <-t.C:
				if n := s.scorer.Tick(); n > 0 {
					fmt.Fprintf(s.out, "scorer: %d new journal events\n", n)
					s.save()
				}
			}
		}
	}()
	return s.stopAndSave
}

// stopAndSave halts polling, consumes the stream tail, and persists the
// state — the graceful-shutdown path; a SIGKILL instead relies on the
// last observing poll's durable save plus restore-time validation.
func (s *liveScorer) stopAndSave() {
	select {
	case <-s.stopc:
	default:
		close(s.stopc)
	}
	<-s.done
	s.scorer.Tick()
	s.save()
}
