// Command honeypotd builds the simulated world, runs the 13 honeypot
// campaigns in virtual time, and then serves the resulting platform
// state over HTTP so it can be crawled like the 2014 Facebook surface.
//
// Usage:
//
//	honeypotd [-addr :8080] [-seed N] [-scale 0.25] [-workers W] [-token secret]
//
// Endpoints: /api/page/{id}, /api/page/{id}/likes, /api/user/{id},
// /api/user/{id}/friends, /api/user/{id}/likes, /api/directory,
// /api/admin/report/{id} (X-Admin-Token), /api/healthz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/socialnet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(os.Args[1:], os.Stderr, func(addr string, h http.Handler) error {
		return serveGraceful(ctx, addr, h, os.Stderr)
	}))
}

// run is the testable body of the command: it parses flags, builds (or
// loads) the world, assembles the crawl surface, and hands the handler
// to serve. In production serve is serveGraceful — an http.Server with
// slow-client timeouts that drains on SIGINT/SIGTERM; tests inject a
// serve function backed by httptest instead of a real listener. It
// returns the process exit code.
func run(args []string, stderr io.Writer, serve func(addr string, h http.Handler) error) int {
	fs := flag.NewFlagSet("honeypotd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	seed := fs.Int64("seed", 2014, "random seed")
	scale := fs.Float64("scale", 0.25, "study scale in (0,1]")
	workers := fs.Int("workers", 0, "study worker pool size (0 = one per CPU)")
	token := fs.String("token", "honeypot-admin", "admin token for /api/admin (empty disables)")
	rps := fs.Float64("rps", 0, "rate-limit requests/second (0 = unlimited)")
	load := fs.String("load", "", "serve a world snapshot instead of building one")
	save := fs.String("save", "", "write the built world to a snapshot file before serving")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	store, err := buildStore(*seed, *scale, *workers, *load, *save, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "honeypotd: %v\n", err)
		return 1
	}

	handler := newHandler(store, *token, *rps)
	fmt.Fprintf(stderr, "serving on http://%s (admin token %q)\n", *addr, *token)
	if err := serve(*addr, handler); err != nil {
		fmt.Fprintf(stderr, "honeypotd: %v\n", err)
		return 1
	}
	return 0
}

// buildStore loads a snapshot or builds a fresh world by running the
// full study at the given scale on the parallel engine.
func buildStore(seed int64, scale float64, workers int, load, save string, stderr io.Writer) (*socialnet.Store, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		store, err := socialnet.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "loaded world snapshot %s (%d users, %d pages)\n",
			load, store.NumUsers(), store.NumPages())
		return store, nil
	}

	cfg, err := core.ScaledConfig(seed, scale)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	fmt.Fprintf(stderr, "building world and running campaigns (seed %d, scale %.2f)...\n", seed, scale)
	start := time.Now()
	study, err := core.NewStudy(cfg)
	if err != nil {
		return nil, err
	}
	res, err := study.Run()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stderr, "world ready in %s\n", time.Since(start).Round(time.Millisecond))
	for _, c := range res.Campaigns {
		fmt.Fprintf(stderr, "  %-8s page=%d likes=%d\n", c.Spec.ID, c.Page, c.Likes)
	}
	store := study.Store()
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return nil, err
		}
		if err := store.WriteSnapshot(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "world snapshot written to %s\n", save)
	}
	return store, nil
}

// newHandler assembles the crawl surface: the API server plus the
// optional rate limiter.
func newHandler(store *socialnet.Store, token string, rps float64) http.Handler {
	var handler http.Handler = api.NewServer(store, token)
	if rps > 0 {
		handler = api.Throttle(handler, rps, int(rps)+1)
	}
	return handler
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before the process exits anyway.
const shutdownGrace = 10 * time.Second

// serveGraceful runs an http.Server with slow-client timeouts and
// drains it cleanly when ctx is cancelled (SIGINT/SIGTERM in main). A
// clean shutdown returns nil; an aborted listener returns its error.
func serveGraceful(ctx context.Context, addr string, h http.Handler, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintf(stderr, "honeypotd: signal received, draining for up to %s\n", shutdownGrace)
		shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		// Serve may have failed for a real reason racing the signal;
		// only a clean close is success.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
