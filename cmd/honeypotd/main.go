// Command honeypotd builds the simulated world, runs the 13 honeypot
// campaigns in virtual time, and then serves the resulting platform
// state over HTTP so it can be crawled like the 2014 Facebook surface.
//
// Usage:
//
//	honeypotd [-addr :8080] [-seed N] [-scale 0.25] [-workers W] [-token secret]
//	          [-data-dir DIR] [-sync-every N] [-rps R] [-client-rps R] [-max-conns N]
//
// Endpoints: /api/page/{id}, /api/page/{id}/likes (GET paged, POST
// inject with X-Admin-Token), /api/user/{id}, /api/user/{id}/friends,
// /api/user/{id}/likes, /api/directory, /api/admin/report/{id}
// (X-Admin-Token), /api/healthz, and the live fraud-scoring surface
// /api/fraud, /api/page/{id}/fraud, /api/user/{id}/fraud (all
// X-Admin-Token; backed by the streaming detector's journal cursor).
//
// With -data-dir the world is durable: the first start builds it,
// checkpoints it into the directory, and serves the reopened copy;
// every like accepted afterwards streams through the append-only
// journal segments, so a restart — graceful or SIGKILL — resumes the
// world (and the live monitor's per-page cursors) instead of
// rebuilding it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/socialnet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(os.Args[1:], os.Stderr, func(addr string, h http.Handler, maxConns int) error {
		return serveGraceful(ctx, addr, h, maxConns, os.Stderr)
	}))
}

// run is the testable body of the command: it parses flags, builds (or
// loads, or durably reopens) the world, assembles the crawl surface,
// and hands the handler to serve. In production serve is serveGraceful
// — an http.Server with slow-client timeouts that drains on
// SIGINT/SIGTERM; tests inject a serve function backed by httptest
// instead of a real listener. It returns the process exit code.
func run(args []string, stderr io.Writer, serve func(addr string, h http.Handler, maxConns int) error) int {
	fs := flag.NewFlagSet("honeypotd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	seed := fs.Int64("seed", 2014, "random seed")
	scale := fs.Float64("scale", 0.25, "study scale in (0,1]")
	workers := fs.Int("workers", 0, "study worker pool size (0 = one per CPU)")
	token := fs.String("token", "honeypot-admin", "admin token for /api/admin (empty disables)")
	rps := fs.Float64("rps", 0, "global rate-limit ceiling, requests/second (0 = unlimited)")
	clientRPS := fs.Float64("client-rps", 0, "per-client rate limit, requests/second (0 = disabled)")
	maxConns := fs.Int("max-conns", 0, "maximum simultaneously open client connections; over-limit connections are shed at accept (0 = unlimited)")
	load := fs.String("load", "", "serve a world snapshot instead of building one")
	save := fs.String("save", "", "write the built world to a snapshot file before serving")
	dataDir := fs.String("data-dir", "", "durable state directory: the world persists here and a restart resumes it (likes, monitor cursors and all)")
	syncEvery := fs.Int("sync-every", 1, "fsync the journal after this many likes; 1 = group commit, fully durable acknowledgements at coalesced-fsync cost (with -data-dir)")
	syncInterval := fs.Duration("sync-interval", socialnet.DefaultSyncInterval, "background journal fsync period (with -data-dir)")
	monPoll := fs.Duration("monitor-poll", 2*time.Second, "live monitor poll interval (with -data-dir)")
	follow := fs.String("follow", "", "run as a read replica of the leader at this URL: bootstrap from its snapshot, tail its journal segments, serve the full read API locally (requires -data-dir)")
	leaderToken := fs.String("leader-token", "honeypot-admin", "admin token for the leader's replication endpoints (with -follow)")
	followPoll := fs.Duration("follow-poll", 500*time.Millisecond, "replication poll interval (with -follow)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *follow != "" {
		return runFollower(followerConfig{
			leaderURL:   *follow,
			leaderToken: *leaderToken,
			pollEvery:   *followPoll,
			dataDir:     *dataDir,
			addr:        *addr,
			token:       *token,
			rps:         *rps,
			clientRPS:   *clientRPS,
			maxConns:    *maxConns,
			monPoll:     *monPoll,
			syncEvery:   *syncEvery,
			syncInt:     *syncInterval,
		}, stderr, serve)
	}

	var store *socialnet.Store
	var tailByPage map[socialnet.PageID]int
	var err error
	if *dataDir != "" {
		opts := socialnet.WALOptions{SyncEvery: *syncEvery, SyncInterval: *syncInterval}
		store, tailByPage, err = openOrBuildDurable(*dataDir, opts, *seed, *scale, *workers, *load, *save, stderr)
	} else {
		store, err = buildStore(*seed, *scale, *workers, *load, *save, stderr)
	}
	if err != nil {
		fmt.Fprintf(stderr, "honeypotd: %v\n", err)
		return 1
	}

	// The live monitor resumes each honeypot page's journal cursor from
	// the data dir, so likes injected while serving are observed across
	// any number of restarts (at-least-once over a crash boundary).
	var lm *liveMonitor
	if *dataDir != "" {
		lm, err = newLiveMonitor(store, filepath.Join(*dataDir, monitorStateFile), stderr, tailByPage)
		if err != nil {
			fmt.Fprintf(stderr, "honeypotd: %v\n", err)
			return 1
		}
		stop := lm.start(*monPoll)
		defer stop()
	}

	// The streaming fraud scorer serves live verdicts; with -data-dir
	// its cursor and feature state ride the checkpoint as a sidecar and
	// a restart resumes scoring instead of rescanning the journal.
	scorerPath := ""
	if *dataDir != "" {
		scorerPath = filepath.Join(*dataDir, scorerStateFile)
	}
	ls := newLiveScorer(store, scorerPath, stderr)
	stopScorer := ls.start(*monPoll)
	defer stopScorer()

	handler, apiSrv := newHandler(store, *token, *rps, *clientRPS, ls.scorer)
	if store.Durable() {
		// Advertise the fsync horizon so clients (and replicas' users)
		// can compare leader and replica X-Repl-Offsets directly.
		apiSrv.SetReplOffsets(func() []uint64 { return store.ReplOffsets(nil) })
	}
	fmt.Fprintf(stderr, "serving on http://%s (admin token %q)\n", *addr, *token)
	serveErr := serve(*addr, handler, *maxConns)

	// Orderly shutdown: persist the monitor cursors and scorer state,
	// checkpoint the world (folding the WAL tail into the snapshot and
	// compacting), and close the journal. A SIGKILL skips all of this —
	// that is what the WAL is for.
	if lm != nil {
		lm.stopAndSave()
	}
	ls.stopAndSave()
	if *dataDir != "" {
		if err := store.Checkpoint(*dataDir); err != nil {
			fmt.Fprintf(stderr, "honeypotd: final checkpoint: %v\n", err)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintf(stderr, "honeypotd: close journal: %v\n", err)
		}
	}
	if serveErr != nil {
		fmt.Fprintf(stderr, "honeypotd: %v\n", serveErr)
		return 1
	}
	return 0
}

// followerConfig carries the replica-mode settings from run's flags.
type followerConfig struct {
	leaderURL   string
	leaderToken string
	pollEvery   time.Duration
	dataDir     string
	addr        string
	token       string
	rps         float64
	clientRPS   float64
	maxConns    int
	monPoll     time.Duration
	syncEvery   int
	syncInt     time.Duration
}

// runFollower serves a read replica: bootstrap from the leader's
// snapshot (first start only), tail its journal segments into a local
// WAL, and serve the full read API — likes, users, friends, directory,
// and live fraud verdicts from a local StreamScorer — while writes get
// 403 and every response carries the replica's applied offsets in
// X-Repl-Offsets. The live monitor does not run here: campaign
// observation is the leader's job; the replica's job is read capacity.
func runFollower(cfg followerConfig, stderr io.Writer, serve func(addr string, h http.Handler, maxConns int) error) int {
	if cfg.dataDir == "" {
		fmt.Fprintf(stderr, "honeypotd: -follow requires -data-dir (the replica persists shipped segments there)\n")
		return 2
	}
	src := api.NewReplHTTPSource(cfg.leaderURL, cfg.leaderToken, nil)
	opts := socialnet.WALOptions{SyncEvery: cfg.syncEvery, SyncInterval: cfg.syncInt}
	fw, stats, err := socialnet.OpenFollower(context.Background(), cfg.dataDir, src, socialnet.FollowerOptions{WAL: opts})
	if err != nil {
		fmt.Fprintf(stderr, "honeypotd: open follower: %v\n", err)
		return 1
	}
	store := fw.Store()
	if stats != nil && stats.TailEvents > 0 {
		fmt.Fprintf(stderr, "resumed replica from %s (%d replayed from WAL tail)\n", cfg.dataDir, stats.TailEvents)
	}
	if n, err := fw.Poll(context.Background()); err != nil {
		fmt.Fprintf(stderr, "honeypotd: initial catch-up: %v\n", err)
		return 1
	} else {
		fmt.Fprintf(stderr, "replica of %s caught up (+%d records; %d users, %d pages)\n",
			cfg.leaderURL, n, store.NumUsers(), store.NumPages())
	}

	// The serving state — follower store, its local fraud scorer, and
	// the API server built over them — is bundled so a re-bootstrap can
	// swap all of it atomically under the live listener.
	type replica struct {
		fw         *socialnet.FollowerStore
		ls         *liveScorer
		stopScorer func()
		apiSrv     *api.Server
		handler    http.Handler
		// dead marks a replica whose store was closed by a failed
		// re-bootstrap: shutdown must not checkpoint or re-close it.
		dead bool
	}
	// The replica scores fraud locally from its own shipped journal —
	// read capacity scales with replicas, verdicts included.
	openReplica := func(fw *socialnet.FollowerStore) *replica {
		ls := newLiveScorer(fw.Store(), filepath.Join(cfg.dataDir, scorerStateFile), stderr)
		stop := ls.start(cfg.monPoll)
		handler, apiSrv := newHandler(fw.Store(), cfg.token, cfg.rps, cfg.clientRPS, ls.scorer)
		apiSrv.SetReadOnly(true)
		apiSrv.SetReplOffsets(func() []uint64 { return fw.Offsets(nil) })
		return &replica{fw: fw, ls: ls, stopScorer: stop, apiSrv: apiSrv, handler: handler}
	}
	var live atomic.Pointer[replica]
	live.Store(openReplica(fw))
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		live.Load().handler.ServeHTTP(w, r)
	})

	// Tail loop: poll the leader until shutdown. A replication gap
	// (leader compacted past our cursor) gets ONE automatic recovery
	// attempt: re-bootstrap from the leader's current snapshot into a
	// scratch dir, atomically swap it over the data dir, and swap the
	// whole serving bundle under the listener. A second gap, or a
	// failed re-bootstrap, is fatal — the operator must intervene;
	// anything else is transient and retried next tick. A dead tail
	// marks the replica unhealthy (/api/healthz goes 503) rather than
	// exiting the goroutine silently: the process keeps draining
	// in-flight readers, but health-checked traffic stops landing on
	// ever-staler data.
	done := make(chan struct{})
	tailStopped := make(chan struct{})
	go func() {
		defer close(tailStopped)
		tick := time.NewTicker(cfg.pollEvery)
		defer tick.Stop()
		rebootstrapped := false
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := live.Load()
				_, err := cur.fw.Poll(context.Background())
				if err == nil {
					continue
				}
				if !errors.Is(err, socialnet.ErrReplGap) {
					fmt.Fprintf(stderr, "honeypotd: replication poll: %v\n", err)
					continue
				}
				if rebootstrapped {
					fmt.Fprintf(stderr, "honeypotd: replication gap again after re-bootstrap: %v (delete %s and restart)\n", err, cfg.dataDir)
					cur.apiSrv.SetHealthError(fmt.Sprintf("replication tail dead: %v", err))
					return
				}
				rebootstrapped = true
				fmt.Fprintf(stderr, "honeypotd: replication gap: %v; re-bootstrapping from the leader's current snapshot\n", err)
				cur.stopScorer()
				if cerr := cur.fw.Close(); cerr != nil {
					fmt.Fprintf(stderr, "honeypotd: close gapped replica: %v\n", cerr)
				}
				fw2, _, rerr := socialnet.RebootstrapFollower(context.Background(), cfg.dataDir, src, socialnet.FollowerOptions{WAL: opts})
				if rerr != nil {
					fmt.Fprintf(stderr, "honeypotd: re-bootstrap: %v (delete %s and restart)\n", rerr, cfg.dataDir)
					deadCopy := *cur
					deadCopy.dead = true
					live.Store(&deadCopy)
					cur.apiSrv.SetHealthError(fmt.Sprintf("replication tail dead: re-bootstrap failed: %v", rerr))
					return
				}
				next := openReplica(fw2)
				live.Store(next)
				fmt.Fprintf(stderr, "replica re-bootstrapped from %s (%d users, %d pages)\n",
					cfg.leaderURL, fw2.Store().NumUsers(), fw2.Store().NumPages())
			}
		}
	}()
	fmt.Fprintf(stderr, "serving replica on http://%s (leader %s)\n", cfg.addr, cfg.leaderURL)
	serveErr := serve(cfg.addr, root, cfg.maxConns)

	close(done)
	<-tailStopped
	cur := live.Load()
	cur.stopScorer()
	if !cur.dead {
		cur.ls.stopAndSave()
		if err := cur.fw.Checkpoint(); err != nil {
			fmt.Fprintf(stderr, "honeypotd: final checkpoint: %v\n", err)
		}
		if err := cur.fw.Close(); err != nil {
			fmt.Fprintf(stderr, "honeypotd: close journal: %v\n", err)
		}
	}
	if serveErr != nil {
		fmt.Fprintf(stderr, "honeypotd: %v\n", serveErr)
		return 1
	}
	return 0
}

// openOrBuildDurable resumes the world persisted in dir, or — on first
// start — builds it, checkpoints it into dir, and reopens it from disk.
// Serving always happens from the durably reopened store, so every
// restart sees the identical canonical world plus whatever the journal
// accumulated, and the world build is paid exactly once per data dir.
// It also returns the recovery's per-page WAL-tail counts, which the
// live monitor uses to clamp persisted cursors.
func openOrBuildDurable(dir string, opts socialnet.WALOptions, seed int64, scale float64, workers int, load, save string, stderr io.Writer) (*socialnet.Store, map[socialnet.PageID]int, error) {
	resuming := socialnet.HasDurableState(dir)
	store, stats, err := socialnet.OpenOrCreate(dir, opts, func() (*socialnet.Store, error) {
		return buildStore(seed, scale, workers, load, save, stderr)
	})
	if err != nil {
		return nil, nil, err
	}
	if resuming {
		fmt.Fprintf(stderr, "resumed world from %s (%d users, %d pages, %d journal events; %d replayed from WAL tail)\n",
			dir, store.NumUsers(), store.NumPages(), store.Journal().Len(), stats.TailEvents)
		if stats.DroppedEvents > 0 {
			fmt.Fprintf(stderr, "warning: %d journal events referenced unknown users/pages and were dropped\n", stats.DroppedEvents)
		}
	} else {
		fmt.Fprintf(stderr, "world persisted to %s\n", dir)
	}
	return store, stats.TailByPage, nil
}

// buildStore loads a snapshot or builds a fresh world by running the
// full study at the given scale on the parallel engine.
func buildStore(seed int64, scale float64, workers int, load, save string, stderr io.Writer) (*socialnet.Store, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		store, err := socialnet.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "loaded world snapshot %s (%d users, %d pages)\n",
			load, store.NumUsers(), store.NumPages())
		return store, nil
	}

	cfg, err := core.ScaledConfig(seed, scale)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	fmt.Fprintf(stderr, "building world and running campaigns (seed %d, scale %.2f)...\n", seed, scale)
	start := time.Now()
	study, err := core.NewStudy(cfg)
	if err != nil {
		return nil, err
	}
	res, err := study.Run()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stderr, "world ready in %s\n", time.Since(start).Round(time.Millisecond))
	for _, c := range res.Campaigns {
		fmt.Fprintf(stderr, "  %-8s page=%d likes=%d\n", c.Spec.ID, c.Page, c.Likes)
	}
	store := study.Store()
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return nil, err
		}
		if err := store.WriteSnapshot(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "world snapshot written to %s\n", save)
	}
	return store, nil
}

// newHandler assembles the crawl surface: the API server plus the
// optional rate limiters. With -client-rps each client identity (the
// X-API-Token header, or the remote address) gets its own token bucket
// under the -rps global ceiling; with only -rps the single global
// bucket applies.
func newHandler(store *socialnet.Store, token string, rps, clientRPS float64, scorer *detect.StreamScorer) (http.Handler, *api.Server) {
	srv := api.NewServer(store, token)
	if scorer != nil {
		srv.SetFraudScorer(scorer)
	}
	var handler http.Handler = srv
	switch {
	case clientRPS > 0:
		handler = api.PerClientThrottle(handler, api.ThrottleConfig{
			PerClientRPS: clientRPS,
			GlobalRPS:    rps,
		})
	case rps > 0:
		handler = api.Throttle(handler, rps, int(rps)+1)
	}
	return handler, srv
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before the process exits anyway.
const shutdownGrace = 10 * time.Second

// Slow-client timeouts for the public listener. Every accepted
// connection holds a goroutine and (under -max-conns) a listener slot,
// so each phase of a request's life gets an explicit bound; without
// them one slowloris-style client per slot could pin the server's
// capacity indefinitely.
const (
	// readHeaderTimeout bounds the wait for the request line and
	// headers — the cheapest phase to stall and the classic slowloris
	// vector, so it gets the tightest bound.
	readHeaderTimeout = 5 * time.Second
	// readTimeout bounds reading the entire request, body included.
	// Bodies here are small (the only POST is a like injection, capped
	// at 64 KiB), so 15s is generous even for slow links.
	readTimeout = 15 * time.Second
	// writeTimeout bounds writing the response. Directory and
	// like-stream pages can reach a few hundred KiB compressed; a
	// client must still drain that within 30s or forfeit the slot.
	writeTimeout = 30 * time.Second
	// idleTimeout bounds a keep-alive connection between requests. The
	// crawler reuses connections aggressively, so idle slots are
	// normal; two minutes keeps reuse effective while still reclaiming
	// abandoned sockets.
	idleTimeout = 2 * time.Minute
)

// serveGraceful runs an http.Server with slow-client timeouts and
// drains it cleanly when ctx is cancelled (SIGINT/SIGTERM in main). A
// clean shutdown returns nil; an aborted listener returns its error.
// maxConns > 0 gates the listener with api.LimitListener, bounding how
// many connections can hold server resources at once (the timeouts
// bound only how long each one can).
func serveGraceful(ctx context.Context, addr string, h http.Handler, maxConns int, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ln = api.LimitListener(ln, maxConns)
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintf(stderr, "honeypotd: signal received, draining for up to %s\n", shutdownGrace)
		shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		// Serve may have failed for a real reason racing the signal;
		// only a clean close is success.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
