// Command honeypotd builds the simulated world, runs the 13 honeypot
// campaigns in virtual time, and then serves the resulting platform
// state over HTTP so it can be crawled like the 2014 Facebook surface.
//
// Usage:
//
//	honeypotd [-addr :8080] [-seed N] [-scale 0.25] [-token secret]
//
// Endpoints: /api/page/{id}, /api/page/{id}/likes, /api/user/{id},
// /api/user/{id}/friends, /api/user/{id}/likes, /api/directory,
// /api/admin/report/{id} (X-Admin-Token), /api/healthz.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/socialnet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 2014, "random seed")
	scale := flag.Float64("scale", 0.25, "study scale in (0,1]")
	token := flag.String("token", "honeypot-admin", "admin token for /api/admin (empty disables)")
	rps := flag.Float64("rps", 0, "rate-limit requests/second (0 = unlimited)")
	load := flag.String("load", "", "serve a world snapshot instead of building one")
	save := flag.String("save", "", "write the built world to a snapshot file before serving")
	flag.Parse()

	var store *socialnet.Store
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fail(err)
		}
		store, err = socialnet.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "loaded world snapshot %s (%d users, %d pages)\n",
			*load, store.NumUsers(), store.NumPages())
	} else {
		cfg, err := core.ScaledConfig(*seed, *scale)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "building world and running campaigns (seed %d, scale %.2f)...\n", *seed, *scale)
		start := time.Now()
		study, err := core.NewStudy(cfg)
		if err != nil {
			fail(err)
		}
		res, err := study.Run()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "world ready in %s\n", time.Since(start).Round(time.Millisecond))
		for _, c := range res.Campaigns {
			fmt.Fprintf(os.Stderr, "  %-8s page=%d likes=%d\n", c.Spec.ID, c.Page, c.Likes)
		}
		store = study.Store()
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				fail(err)
			}
			if err := store.WriteSnapshot(f); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "world snapshot written to %s\n", *save)
		}
	}

	var handler http.Handler = api.NewServer(store, *token)
	if *rps > 0 {
		handler = api.Throttle(handler, *rps, int(*rps)+1)
	}
	fmt.Fprintf(os.Stderr, "serving on http://%s (admin token %q)\n", *addr, *token)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "honeypotd: %v\n", err)
	os.Exit(1)
}
