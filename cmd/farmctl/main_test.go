package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListFarms(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"BoostLikes.com", "SocialFormula.com", "AuthenticLikes.com", "MammothSocials.com", "shares pool alms"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestListPrices(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"prices"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "PER 1000") || !strings.Contains(out.String(), "ChompOn") {
		t.Fatalf("prices output malformed:\n%s", out.String())
	}
}

func TestOrderSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"order", "-farm", "SocialFormula.com", "-count", "60", "-seed", "5"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "delivered 60/60 likes") {
		t.Fatalf("order output missing delivery line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "delivery by day:") {
		t.Fatalf("order output missing day profile:\n%s", out.String())
	}
}

func TestUnknownSubcommand(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestOrderUnknownFarm(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"order", "-farm", "NoSuchFarm"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown farm") {
		t.Fatalf("stderr missing diagnosis: %s", errOut.String())
	}
}
