// Command farmctl inspects the like-farm models of the study
// configuration and runs single ad-hoc orders against a fresh world,
// printing the delivery profile — a workbench for the two modi operandi
// (burst vs trickle) outside the full 13-campaign study.
//
// Usage:
//
//	farmctl list                                  # show configured farms
//	farmctl prices                                # paper price list
//	farmctl order -farm SocialFormula.com -count 500 -country USA [-seed N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/accounts"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialnet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command; it returns the process exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "list":
		listFarms(stdout)
		return 0
	case "order":
		return runOrder(args[1:], stdout, stderr)
	case "prices":
		listPrices(stdout)
		return 0
	default:
		usage(stderr)
		return 2
	}
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, "usage: farmctl list | farmctl prices | farmctl order -farm NAME -count N [-country C] [-seed N]")
}

func listPrices(stdout io.Writer) {
	prices := farm.PaperPriceList()
	value := farm.ValuePerLikeEstimates()
	fmt.Fprintf(stdout, "%-22s %-10s %10s\n", "FARM", "LOCATION", "PER 1000")
	cfg := core.DefaultConfig(1)
	for _, fs := range cfg.Farms {
		for _, loc := range prices.Locations(fs.Config.Name) {
			if p, ok := prices.Price(fs.Config.Name, loc); ok {
				fmt.Fprintf(stdout, "%-22s %-10s %9.2f$\n", fs.Config.Name, loc, p)
			}
		}
	}
	fmt.Fprintf(stdout, "\nper-like value estimates (§1): ChompOn $%.2f, range $%.2f-$%.2f\n",
		value["ChompOn"], value["low"], value["high"])
}

func listFarms(stdout io.Writer) {
	cfg := core.DefaultConfig(1)
	fmt.Fprintf(stdout, "%-22s %-8s %-10s %-8s %s\n", "FARM", "MODE", "POOL", "SIZE", "NOTES")
	for _, fs := range cfg.Farms {
		size := fs.Pool.Size
		notes := []string{}
		if fs.Config.IgnoreTargeting {
			notes = append(notes, "ignores-targeting")
		}
		if fs.Config.RotateAccounts {
			notes = append(notes, "rotates-accounts")
		}
		if size == 0 {
			notes = append(notes, "shares pool "+fs.PoolName)
		}
		fmt.Fprintf(stdout, "%-22s %-8s %-10s %-8d %s\n",
			fs.Config.Name, fs.Config.Mode, fs.PoolName, size, strings.Join(notes, ","))
	}
}

func runOrder(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("order", flag.ContinueOnError)
	fs.SetOutput(stderr)
	farmName := fs.String("farm", core.FarmSocialFormula, "farm brand name")
	count := fs.Int("count", 500, "likes to order")
	country := fs.String("country", "", "target country (empty = worldwide)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := core.DefaultConfig(*seed)
	var setup *core.FarmSetup
	var poolSetup *core.FarmSetup
	for i := range cfg.Farms {
		if cfg.Farms[i].Config.Name == *farmName {
			setup = &cfg.Farms[i]
		}
	}
	if setup == nil {
		fmt.Fprintf(stderr, "farmctl: unknown farm %q (try farmctl list)\n", *farmName)
		return 1
	}
	for i := range cfg.Farms {
		if cfg.Farms[i].PoolName == setup.PoolName && cfg.Farms[i].Pool.Size > 0 {
			poolSetup = &cfg.Farms[i]
			break
		}
	}
	if poolSetup == nil {
		fmt.Fprintf(stderr, "farmctl: farm %q has no pool definition\n", *farmName)
		return 1
	}

	r := rand.New(rand.NewSource(*seed))
	st := socialnet.NewStore()
	popSpec := socialnet.DefaultPopulationSpec()
	popSpec.NumUsers = 1000
	popSpec.NumAmbientPages = 1000
	pop, err := socialnet.GeneratePopulation(r, st, popSpec)
	if err != nil {
		return fail(stderr, err)
	}
	cohort, err := accounts.Build(r, st, pop, poolSetup.Pool)
	if err != nil {
		return fail(stderr, err)
	}
	f, err := farm.New(r, st, setup.Config, cohort, nil)
	if err != nil {
		return fail(stderr, err)
	}
	page, err := st.AddPage(socialnet.Page{Name: "farmctl-target", Honeypot: true})
	if err != nil {
		return fail(stderr, err)
	}
	clock := simclock.New(core.StudyStart)
	order := farm.Order{
		Campaign: "adhoc", Page: page, Quantity: *count,
		DurationDays: 15, TargetCountry: *country,
	}
	if err := f.PlaceOrder(clock, order); err != nil {
		return fail(stderr, err)
	}
	clock.Drain(0)

	likes := st.LikesOfPage(page)
	fmt.Fprintf(stdout, "farm %s delivered %d/%d likes (%s mode)\n", *farmName, len(likes), *count, f.Mode())
	perDay := map[int]int{}
	countries := map[string]int{}
	for _, lk := range likes {
		perDay[int(lk.At.Sub(core.StudyStart)/(24*time.Hour))]++
		u, _ := st.User(lk.User)
		countries[u.Country]++
	}
	fmt.Fprintln(stdout, "delivery by day:")
	for d := 0; d <= 15; d++ {
		if n := perDay[d]; n > 0 {
			fmt.Fprintf(stdout, "  day %2d: %4d %s\n", d, n, strings.Repeat("#", n/5+1))
		}
	}
	fmt.Fprintln(stdout, "delivery by country:")
	for c, n := range countries {
		fmt.Fprintf(stdout, "  %-10s %d\n", c, n)
	}
	rep, err := platform.ReportFor(st, page)
	if err == nil {
		fpc, mpc := rep.FemaleMaleSplit()
		fmt.Fprintf(stdout, "liker demographics: %.0f%%F/%.0f%%M, KL vs global: ", fpc, mpc)
		if kl, err := rep.KLvsGlobal(); err == nil {
			fmt.Fprintf(stdout, "%.2f bits\n", kl)
		} else {
			fmt.Fprintln(stdout, "n/a")
		}
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "farmctl: %v\n", err)
	return 1
}
