// Command farmctl inspects the like-farm models of the study
// configuration and runs single ad-hoc orders against a fresh world,
// printing the delivery profile — a workbench for the two modi operandi
// (burst vs trickle) outside the full 13-campaign study.
//
// Usage:
//
//	farmctl list                                  # show configured farms
//	farmctl order -farm SocialFormula.com -count 500 -country USA [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/accounts"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialnet"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		listFarms()
	case "order":
		runOrder(os.Args[2:])
	case "prices":
		listPrices()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: farmctl list | farmctl prices | farmctl order -farm NAME -count N [-country C] [-seed N]")
	os.Exit(2)
}

func listPrices() {
	prices := farm.PaperPriceList()
	value := farm.ValuePerLikeEstimates()
	fmt.Printf("%-22s %-10s %10s\n", "FARM", "LOCATION", "PER 1000")
	cfg := core.DefaultConfig(1)
	for _, fs := range cfg.Farms {
		for _, loc := range prices.Locations(fs.Config.Name) {
			if p, ok := prices.Price(fs.Config.Name, loc); ok {
				fmt.Printf("%-22s %-10s %9.2f$\n", fs.Config.Name, loc, p)
			}
		}
	}
	fmt.Printf("\nper-like value estimates (§1): ChompOn $%.2f, range $%.2f-$%.2f\n",
		value["ChompOn"], value["low"], value["high"])
}

func listFarms() {
	cfg := core.DefaultConfig(1)
	fmt.Printf("%-22s %-8s %-10s %-8s %s\n", "FARM", "MODE", "POOL", "SIZE", "NOTES")
	for _, fs := range cfg.Farms {
		size := fs.Pool.Size
		notes := []string{}
		if fs.Config.IgnoreTargeting {
			notes = append(notes, "ignores-targeting")
		}
		if fs.Config.RotateAccounts {
			notes = append(notes, "rotates-accounts")
		}
		if size == 0 {
			notes = append(notes, "shares pool "+fs.PoolName)
		}
		fmt.Printf("%-22s %-8s %-10s %-8d %s\n",
			fs.Config.Name, fs.Config.Mode, fs.PoolName, size, strings.Join(notes, ","))
	}
}

func runOrder(args []string) {
	fs := flag.NewFlagSet("order", flag.ExitOnError)
	farmName := fs.String("farm", core.FarmSocialFormula, "farm brand name")
	count := fs.Int("count", 500, "likes to order")
	country := fs.String("country", "", "target country (empty = worldwide)")
	seed := fs.Int64("seed", 1, "random seed")
	_ = fs.Parse(args)

	cfg := core.DefaultConfig(*seed)
	var setup *core.FarmSetup
	var poolSetup *core.FarmSetup
	for i := range cfg.Farms {
		if cfg.Farms[i].Config.Name == *farmName {
			setup = &cfg.Farms[i]
		}
	}
	if setup == nil {
		fmt.Fprintf(os.Stderr, "farmctl: unknown farm %q (try farmctl list)\n", *farmName)
		os.Exit(1)
	}
	for i := range cfg.Farms {
		if cfg.Farms[i].PoolName == setup.PoolName && cfg.Farms[i].Pool.Size > 0 {
			poolSetup = &cfg.Farms[i]
			break
		}
	}
	if poolSetup == nil {
		fmt.Fprintf(os.Stderr, "farmctl: farm %q has no pool definition\n", *farmName)
		os.Exit(1)
	}

	r := rand.New(rand.NewSource(*seed))
	st := socialnet.NewStore()
	popSpec := socialnet.DefaultPopulationSpec()
	popSpec.NumUsers = 1000
	popSpec.NumAmbientPages = 1000
	pop, err := socialnet.GeneratePopulation(r, st, popSpec)
	if err != nil {
		fail(err)
	}
	cohort, err := accounts.Build(r, st, pop, poolSetup.Pool)
	if err != nil {
		fail(err)
	}
	f, err := farm.New(r, st, setup.Config, cohort, nil)
	if err != nil {
		fail(err)
	}
	page, err := st.AddPage(socialnet.Page{Name: "farmctl-target", Honeypot: true})
	if err != nil {
		fail(err)
	}
	clock := simclock.New(core.StudyStart)
	order := farm.Order{
		Campaign: "adhoc", Page: page, Quantity: *count,
		DurationDays: 15, TargetCountry: *country,
	}
	if err := f.PlaceOrder(clock, order); err != nil {
		fail(err)
	}
	clock.Drain(0)

	likes := st.LikesOfPage(page)
	fmt.Printf("farm %s delivered %d/%d likes (%s mode)\n", *farmName, len(likes), *count, f.Mode())
	perDay := map[int]int{}
	countries := map[string]int{}
	for _, lk := range likes {
		perDay[int(lk.At.Sub(core.StudyStart)/(24*time.Hour))]++
		u, _ := st.User(lk.User)
		countries[u.Country]++
	}
	fmt.Println("delivery by day:")
	for d := 0; d <= 15; d++ {
		if n := perDay[d]; n > 0 {
			fmt.Printf("  day %2d: %4d %s\n", d, n, strings.Repeat("#", n/5+1))
		}
	}
	fmt.Println("delivery by country:")
	for c, n := range countries {
		fmt.Printf("  %-10s %d\n", c, n)
	}
	rep, err := platform.ReportFor(st, page)
	if err == nil {
		fpc, mpc := rep.FemaleMaleSplit()
		fmt.Printf("liker demographics: %.0f%%F/%.0f%%M, KL vs global: ", fpc, mpc)
		if kl, err := rep.KLvsGlobal(); err == nil {
			fmt.Printf("%.2f bits\n", kl)
		} else {
			fmt.Println("n/a")
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "farmctl: %v\n", err)
	os.Exit(1)
}
