// Package repro reproduces "Paying for Likes? Understanding Facebook
// Like Fraud Using Honeypots" (De Cristofaro, Friedman, Jourjon, Kaafar,
// Shafiq — IMC 2014) as a simulation-backed Go library.
//
// The paper's measurement infrastructure — thirteen honeypot Facebook
// pages promoted via page-like ads and four commercial like farms — is
// rebuilt in internal packages: a social-network world (socialnet), the
// platform's ad engine / reports tool / fraud sweep (platform), the farm
// operator models (farm, accounts), the honeypot monitor (honeypot), the
// HTTP crawl surface (api, crawler), the §4 analyses (analysis, graph,
// stats, detect), and the end-to-end study driver (core).
//
// The study engine is parallel and deterministic: the world store is
// lock-striped (socialnet.NewShardedStore), campaigns run concurrently
// on private event clocks with RNG streams split per campaign and per
// account, and core.Sweep executes whole scenario grids of study
// variants at once. Results are bit-identical for any worker count
// (StudyConfig.Workers); see DESIGN.md §3–§6.
//
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment
// index and the sharding + worker-pool architecture.
package repro
