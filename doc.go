// Package repro reproduces "Paying for Likes? Understanding Facebook
// Like Fraud Using Honeypots" (De Cristofaro, Friedman, Jourjon, Kaafar,
// Shafiq — IMC 2014) as a simulation-backed Go library.
//
// The paper's measurement infrastructure — thirteen honeypot Facebook
// pages promoted via page-like ads and four commercial like farms — is
// rebuilt in internal packages: a social-network world (socialnet), the
// platform's ad engine / reports tool / fraud sweep (platform), the farm
// operator models (farm, accounts), the honeypot monitor (honeypot), the
// HTTP crawl surface (api, crawler), the §4 analyses (analysis, graph,
// stats, detect), and the end-to-end study driver (core).
//
// The study engine is parallel and deterministic: the world store is
// lock-striped (socialnet.NewShardedStore), campaigns run concurrently
// on private event clocks with RNG streams split per campaign and per
// account, and core.Sweep executes whole scenario grids of study
// variants at once. Results are bit-identical for any worker count
// (StudyConfig.Workers); see DESIGN.md §3–§6.
//
// Every like flows through socialnet.Journal, an append-only sharded
// event log the indexes are derived views of. Honeypot monitors advance
// per-page journal cursors (O(new likes) per §3 poll), the §4 analyses
// run as streaming Aggregators fanned out over one pass of the journal
// (analysis.RunPass), and the fraud sweep groups its burst features
// from one journal scan; see DESIGN.md §8 for the cursor semantics and
// the determinism rules new aggregators must follow.
//
// The §5 fraud detector also runs live: detect.StreamScorer consumes
// the journal from a persisted cursor, folding per-account burst
// features in O(1) amortized per like and resynchronizing out-of-order
// arrivals exactly, so its verdicts match the batch sweep byte for
// byte. honeypotd serves them on admin-gated /fraud endpoints with the
// cursor and fold state riding the checkpoint, and core.Sweep can score
// the detector against ground truth across a scenario grid
// (EvalDetector); see DESIGN.md §14.
//
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment
// index and the sharding + worker-pool architecture.
package repro
