// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Each artifact bench runs the corresponding §4 analysis over
// a shared study run (built once) and reports both wall time and, under
// -v via b.Log, the regenerated rows/series. Run with:
//
//	go test -bench=. -benchmem -benchtime=1x
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/accounts"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/graph"
	"repro/internal/honeypot"
	"repro/internal/platform"
	"repro/internal/simclock"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

var (
	benchOnce    sync.Once
	benchStudy   *core.Study
	benchResults *core.Results
	benchErr     error
)

// benchSetup runs the 13-campaign study once at 1/4 scale and caches it
// for all artifact benches.
func benchSetup(b *testing.B) (*core.Study, *core.Results) {
	b.Helper()
	benchOnce.Do(func() {
		cfg, err := core.ScaledConfig(2014, 0.25)
		if err != nil {
			benchErr = err
			return
		}
		s, err := core.NewStudy(cfg)
		if err != nil {
			benchErr = err
			return
		}
		res, err := s.Run()
		if err != nil {
			benchErr = err
			return
		}
		benchStudy, benchResults = s, res
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy, benchResults
}

func analysisCampaigns(res *core.Results) []analysis.Campaign {
	out := make([]analysis.Campaign, 0, len(res.Campaigns))
	for _, c := range res.Campaigns {
		out = append(out, analysis.Campaign{
			ID: c.Spec.ID, Provider: c.Spec.Provider, Page: c.Page,
			Likers: c.Likers, Active: c.Active,
		})
	}
	return out
}

// BenchmarkTable1Campaigns regenerates Table 1: the campaign roster with
// garnered likes, monitoring spans, and terminated accounts (including
// the §5 month-later sweep, E9).
func BenchmarkTable1Campaigns(b *testing.B) {
	_, res := benchSetup(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = res.RenderTable1()
	}
	b.StopTimer()
	b.Log("\n" + out)
}

// BenchmarkFigure1Geolocation regenerates Figure 1: liker geolocation
// per campaign.
func BenchmarkFigure1Geolocation(b *testing.B) {
	s, res := benchSetup(b)
	camps := analysisCampaigns(res)
	b.ResetTimer()
	var rows []analysis.GeoRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = analysis.LocationBreakdown(s.Store(), camps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rows) == 0 {
		b.Fatal("no geolocation rows")
	}
	b.Log("\n" + res.RenderFigure1())
}

// BenchmarkTable2Demographics regenerates Table 2: gender/age
// distributions and KL divergence vs the global Facebook population.
func BenchmarkTable2Demographics(b *testing.B) {
	s, res := benchSetup(b)
	camps := analysisCampaigns(res)
	b.ResetTimer()
	var rows []analysis.DemoRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = analysis.Demographics(s.Store(), camps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rows) == 0 {
		b.Fatal("no demographics rows")
	}
	b.Log("\n" + res.RenderTable2())
}

// BenchmarkFigure2Temporal regenerates Figure 2: the cumulative like
// time series and the burst-vs-trickle statistics.
func BenchmarkFigure2Temporal(b *testing.B) {
	_, res := benchSetup(b)
	b.ResetTimer()
	var bursts []analysis.BurstStats
	for i := 0; i < b.N; i++ {
		bursts = bursts[:0]
		for _, ts := range res.Temporal {
			bursts = append(bursts, analysis.Burstiness(ts))
		}
	}
	b.StopTimer()
	if len(bursts) != len(res.Temporal) {
		b.Fatal("burst stats incomplete")
	}
	b.Log("\n" + res.RenderFigure2())
}

// BenchmarkTable3SocialGraph regenerates Table 3: likers, public friend
// lists, friend-count statistics, and direct + 2-hop liker friendships
// per provider (including the ALMS shared-operator group).
func BenchmarkTable3SocialGraph(b *testing.B) {
	s, res := benchSetup(b)
	camps := analysisCampaigns(res)
	base := s.Store().FriendGraph()
	b.ResetTimer()
	var rows []analysis.ProviderGroupRow
	for i := 0; i < b.N; i++ {
		ga := analysis.AssignGroups(camps, core.FarmAuthenticLikes, core.FarmMammothSocials)
		var err error
		rows, err = analysis.SocialGraphTable(s.Store(), ga, base)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rows) == 0 {
		b.Fatal("no Table 3 rows")
	}
	b.Log("\n" + res.RenderTable3())
}

// BenchmarkFigure3LikerGraph regenerates Figure 3: the direct and 2-hop
// liker friendship graphs and their component census.
func BenchmarkFigure3LikerGraph(b *testing.B) {
	s, res := benchSetup(b)
	base := s.Store().FriendGraph()
	b.ResetTimer()
	var direct, twoHop *graph.Undirected
	for i := 0; i < b.N; i++ {
		direct, twoHop = analysis.LikerGraphs(res.Groups, base)
	}
	b.StopTimer()
	if direct.NumNodes() == 0 || twoHop.NumEdges() < direct.NumEdges() {
		b.Fatal("liker graphs malformed")
	}
	b.Log("\n" + res.RenderFigure3())
}

// BenchmarkFigure4PageLikeCDF regenerates Figure 4: the distribution of
// page-like counts for every campaign's likers plus the organic baseline
// sample.
func BenchmarkFigure4PageLikeCDF(b *testing.B) {
	s, res := benchSetup(b)
	camps := analysisCampaigns(res)
	b.ResetTimer()
	var cdfs []analysis.PageLikeCDF
	for i := 0; i < b.N; i++ {
		var err error
		cdfs, err = analysis.PageLikeCDFs(s.Store(), camps, res.Baseline)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(cdfs) == 0 {
		b.Fatal("no CDFs")
	}
	b.Log("\n" + res.RenderFigure4())
}

// BenchmarkFigure5Jaccard regenerates Figure 5: the 13x13 Jaccard
// similarity matrices over campaigns' page-like sets and liker sets.
func BenchmarkFigure5Jaccard(b *testing.B) {
	s, res := benchSetup(b)
	camps := analysisCampaigns(res)
	b.ResetTimer()
	var pageSim [][]float64
	for i := 0; i < b.N; i++ {
		var err error
		pageSim, _, err = analysis.JaccardMatrices(s.Store(), camps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(pageSim) != len(camps) {
		b.Fatal("matrix size mismatch")
	}
	b.Log("\n" + res.RenderFigure5())
}

// benchFullStudy runs the complete end-to-end pipeline — world build,
// 13 campaigns, monitoring, sweep, all analyses — at 1/10 scale with
// the given worker-pool size and analysis engine.
func benchFullStudy(b *testing.B, workers int, analyses string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg, err := core.ScaledConfig(int64(i)+1, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Workers = workers
		cfg.Analyses = analyses
		s, err := core.NewStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullStudy measures the parallel engine at its default width
// (Workers = GOMAXPROCS) with the one-pass streaming analysis phase.
// Compare against BenchmarkFullStudySerial for the pool speedup and
// BenchmarkFullStudyMultiScan for the one-pass win; the determinism
// tests prove all of them produce identical output for a fixed seed.
func BenchmarkFullStudy(b *testing.B) { benchFullStudy(b, 0, core.AnalysisOnePass) }

// BenchmarkFullStudySerial is the same pipeline pinned to one worker —
// the serial baseline for the parallel engine.
func BenchmarkFullStudySerial(b *testing.B) { benchFullStudy(b, 1, core.AnalysisOnePass) }

// BenchmarkFullStudyMultiScan is the same pipeline with the legacy
// analysis engine (one full store scan per §4 analysis) — the baseline
// the journal-backed one-pass phase is measured against.
func BenchmarkFullStudyMultiScan(b *testing.B) { benchFullStudy(b, 0, core.AnalysisMultiScan) }

// BenchmarkSweepGrid measures the scenario-grid runner: a 4-variant
// budget×population grid of small studies executed concurrently.
func BenchmarkSweepGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := core.ScaledConfig(int64(i)+1, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		sw := &core.Sweep{
			Variants: core.GridVariants(base,
				core.SweepAxis{Name: "budget", Values: []core.SweepValue{
					{Label: "budget=1x"},
					{Label: "budget=2x", Apply: func(c *core.StudyConfig) {
						for j := range c.Campaigns {
							c.Campaigns[j].BudgetPerDay *= 2
						}
					}},
				}},
				core.SweepAxis{Name: "pop", Values: []core.SweepValue{
					{Label: "pop=1x"},
					{Label: "pop=2x", Apply: func(c *core.StudyConfig) { c.Population.NumUsers *= 2 }},
				}},
			),
			InnerWorkers: 1,
		}
		if _, err := sw.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedStoreParallelLikes measures concurrent AddLike
// throughput on the lock-striped store across shard counts: the
// contention profile the parallel delivery path depends on. Each
// iteration inserts a fixed batch of distinct (user, page) pairs from
// GOMAXPROCS goroutines into a fresh store, so no run ever exhausts
// the pair space and degrades into measuring duplicate rejection.
func BenchmarkShardedStoreParallelLikes(b *testing.B) {
	const nUsers, nPages = 4096, 16
	const batch = nUsers * nPages
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			t0 := core.StudyStart
			workers := runtime.GOMAXPROCS(0)
			for iter := 0; iter < b.N; iter++ {
				b.StopTimer()
				st := socialnet.NewShardedStore(shards)
				users := make([]socialnet.UserID, nUsers)
				for i := range users {
					users[i] = st.AddUser(socialnet.User{Country: socialnet.CountryUSA})
				}
				pages := make([]socialnet.PageID, nPages)
				for i := range pages {
					pages[i], _ = st.AddPage(socialnet.Page{Name: fmt.Sprintf("p%d", i)})
				}
				b.StartTimer()
				var seq atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := int(seq.Add(1)) - 1
							if i >= batch {
								return
							}
							u := users[i%nUsers]
							p := pages[i/nUsers]
							if err := st.AddLike(u, p, t0.Add(time.Duration(i)*time.Second)); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			}
			b.ReportMetric(float64(batch), "likes/op")
		})
	}
}

// ---- Ablation benches (design choices called out in DESIGN.md §4) ----

type ablationWorld struct {
	r     *rand.Rand
	st    *socialnet.Store
	pop   *socialnet.Population
	clock *simclock.Clock
}

func newAblationWorld(b *testing.B, seed int64) *ablationWorld {
	b.Helper()
	r := rand.New(rand.NewSource(seed))
	st := socialnet.NewStore()
	spec := socialnet.DefaultPopulationSpec()
	spec.NumUsers = 400
	spec.NumAmbientPages = 500
	pop, err := socialnet.GeneratePopulation(r, st, spec)
	if err != nil {
		b.Fatal(err)
	}
	return &ablationWorld{r: r, st: st, pop: pop, clock: simclock.New(core.StudyStart)}
}

func ablationPool(b *testing.B, w *ablationWorld, kind accounts.TopologyKind) *accounts.Cohort {
	b.Helper()
	spec := accounts.CohortSpec{
		Name: "ablation-pool", Size: 600,
		Kind:              socialnet.KindFarmBot,
		Operator:          "ablation",
		CountryMix:        stats.MustCategorical([]string{socialnet.CountryUSA}, []float64{1}),
		Profile:           socialnet.GlobalFacebookProfile(),
		FriendsPublicFrac: 0.5,
		Topology: accounts.TopologySpec{
			Kind: kind, InternalPairFrac: 0.1, TripletFrac: 0.3,
			CoreK: 4, CoreBeta: 0.1,
			DeclaredMedian: 200, DeclaredSigma: 0.8,
		},
		// Bursty histories give the bots their detectable signature.
		Cover:     accounts.CoverSpec{LikeMedian: 150, LikeSigma: 0.8, MaxLikes: 500, Bursty: true},
		CreatedAt: core.StudyStart.AddDate(-1, 0, 0),
	}
	c, err := accounts.Build(w.r, w.st, w.pop, spec)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkAblationDeliveryModes contrasts the two §5 modi operandi:
// burst vs trickle delivery of the same order (drives Figure 2's
// separation).
func BenchmarkAblationDeliveryModes(b *testing.B) {
	for _, mode := range []farm.Mode{farm.ModeBurst, farm.ModeTrickle} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newAblationWorld(b, int64(i)+1)
				pool := ablationPool(b, w, accounts.TopologyIslands)
				f, err := farm.New(w.r, w.st, farm.Config{Name: "A", Mode: mode}, pool, nil)
				if err != nil {
					b.Fatal(err)
				}
				page, _ := w.st.AddPage(socialnet.Page{Name: "p", Honeypot: true})
				b.StartTimer()
				if err := f.PlaceOrder(w.clock, farm.Order{
					Campaign: "c", Page: page, Quantity: 400, DurationDays: 15,
				}); err != nil {
					b.Fatal(err)
				}
				w.clock.Drain(0)
				if w.st.LikeCountOfPage(page) != 400 {
					b.Fatal("order under-delivered")
				}
			}
		})
	}
}

// BenchmarkAblationFarmTopology contrasts the farm graph structures:
// pair/triplet islands vs a connected Watts–Strogatz core (drives
// Table 3 / Figure 3).
func BenchmarkAblationFarmTopology(b *testing.B) {
	for _, tc := range []struct {
		name string
		kind accounts.TopologyKind
	}{{"islands", accounts.TopologyIslands}, {"core", accounts.TopologyCore}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newAblationWorld(b, int64(i)+1)
				b.StartTimer()
				pool := ablationPool(b, w, tc.kind)
				ids := make([]int64, len(pool.Members))
				for j, m := range pool.Members {
					ids[j] = int64(m)
				}
				sub := w.st.FriendGraph().InducedSubgraph(ids)
				frac := sub.LargestComponentFraction()
				switch tc.kind {
				case accounts.TopologyCore:
					if frac < 0.9 {
						b.Fatalf("core fragmented: %v", frac)
					}
				case accounts.TopologyIslands:
					if frac > 0.1 {
						b.Fatalf("islands merged: %v", frac)
					}
				}
			}
		})
	}
}

// BenchmarkAblationAccountReuse contrasts account rotation against
// biased reuse between two orders of one operator (drives Figure 5(b)'s
// AL/MS liker overlap and the ALMS group).
func BenchmarkAblationAccountReuse(b *testing.B) {
	for _, tc := range []struct {
		name      string
		reuseBias float64
	}{{"rotate", 0}, {"reuse", 0.65}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newAblationWorld(b, int64(i)+1)
				pool := ablationPool(b, w, accounts.TopologyIslands)
				f, err := farm.New(w.r, w.st, farm.Config{Name: "A", Mode: farm.ModeBurst, RotateAccounts: true}, pool, nil)
				if err != nil {
					b.Fatal(err)
				}
				p1, _ := w.st.AddPage(socialnet.Page{Name: "p1", Honeypot: true})
				p2, _ := w.st.AddPage(socialnet.Page{Name: "p2", Honeypot: true})
				b.StartTimer()
				if err := f.PlaceOrder(w.clock, farm.Order{Campaign: "o1", Page: p1, Quantity: 250, DurationDays: 3}); err != nil {
					b.Fatal(err)
				}
				if err := f.PlaceOrder(w.clock, farm.Order{
					Campaign: "o2", Page: p2, Quantity: 250, DurationDays: 3, ReuseBias: tc.reuseBias,
				}); err != nil {
					b.Fatal(err)
				}
				w.clock.Drain(0)
				l1 := map[socialnet.UserID]bool{}
				for _, lk := range w.st.LikesOfPage(p1) {
					l1[lk.User] = true
				}
				overlap := 0
				for _, lk := range w.st.LikesOfPage(p2) {
					if l1[lk.User] {
						overlap++
					}
				}
				if tc.reuseBias == 0 && overlap > 10 {
					b.Fatalf("rotation produced overlap %d", overlap)
				}
				if tc.reuseBias > 0 && overlap < 100 {
					b.Fatalf("reuse bias produced overlap %d", overlap)
				}
			}
		})
	}
}

// BenchmarkAblationFraudSweep contrasts sweep aggressiveness against the
// bot cohort (drives Table 1's termination counts).
func BenchmarkAblationFraudSweep(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  platform.FraudSweepConfig
	}{
		{"paper-rate", platform.DefaultFraudSweepConfig()},
		{"aggressive", platform.FraudSweepConfig{BaseRate: 0.5, MinScore: 0.2}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newAblationWorld(b, int64(i)+1)
				pool := ablationPool(b, w, accounts.TopologyIslands)
				ledger := accounts.NewLedger(w.pop, core.StudyStart)
				ledger.Register(pool)
				if _, err := ledger.Materialize(w.r, w.st, pool.Members); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := platform.FraudSweep(w.r, w.st, pool.Members, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				if tc.cfg.BaseRate >= 0.5 && len(res.Terminated) == 0 {
					b.Fatal("aggressive sweep terminated nothing")
				}
			}
		})
	}
}

// BenchmarkAblationMonitorCadence contrasts the paper's 2-hour poll
// cadence against daily polling: the coarse monitor cannot resolve
// burst deliveries (first-seen timestamps collapse onto day boundaries),
// which is why §3 crawled every two hours.
func BenchmarkAblationMonitorCadence(b *testing.B) {
	for _, tc := range []struct {
		name     string
		interval time.Duration
	}{{"2h-paper", 2 * time.Hour}, {"daily", 24 * time.Hour}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newAblationWorld(b, int64(i)+1)
				pool := ablationPool(b, w, accounts.TopologyIslands)
				f, err := farm.New(w.r, w.st, farm.Config{Name: "A", Mode: farm.ModeBurst}, pool, nil)
				if err != nil {
					b.Fatal(err)
				}
				page, _ := w.st.AddPage(socialnet.Page{Name: "p", Honeypot: true})
				if err := f.PlaceOrder(w.clock, farm.Order{
					Campaign: "c", Page: page, Quantity: 300, DurationDays: 3, Bursts: 1,
				}); err != nil {
					b.Fatal(err)
				}
				cfg := honeypot.DefaultMonitorConfig(3)
				cfg.ActiveInterval = tc.interval
				b.StartTimer()
				mon, err := honeypot.StartMonitor(w.clock, w.st, page, cfg)
				if err != nil {
					b.Fatal(err)
				}
				w.clock.Drain(0)
				if mon.TotalLikes() != 300 {
					b.Fatalf("observed %d likes", mon.TotalLikes())
				}
				// Resolution check: distinct first-seen instants.
				instants := map[int64]struct{}{}
				for _, u := range mon.Likers() {
					ts, _ := mon.FirstSeen(u)
					instants[ts.UnixNano()] = struct{}{}
				}
				if tc.interval == 2*time.Hour && len(instants) < 1 {
					b.Fatal("fine cadence lost all resolution")
				}
				if tc.interval == 24*time.Hour && len(instants) > 3 {
					b.Fatalf("daily cadence resolved %d instants for a one-burst delivery", len(instants))
				}
			}
		})
	}
}

// BenchmarkMonitorPolling measures the §3 monitoring loop in isolation:
// one page, 15 virtual days of 2-hour polls over a 1000-like stream.
func BenchmarkMonitorPolling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := socialnet.NewStore()
		page, _ := st.AddPage(socialnet.Page{Name: "p", Honeypot: true})
		clock := simclock.New(core.StudyStart)
		r := rand.New(rand.NewSource(int64(i) + 1))
		for j := 0; j < 1000; j++ {
			u := st.AddUser(socialnet.User{Country: "USA"})
			at := time.Duration(r.Int63n(int64(15 * 24 * time.Hour)))
			_, _ = clock.ScheduleAfter(at, "like", func(cl *simclock.Clock) {
				_ = st.AddLike(u, page, cl.Now())
			})
		}
		b.StartTimer()
		mon, err := honeypot.StartMonitor(clock, st, page, honeypot.DefaultMonitorConfig(15))
		if err != nil {
			b.Fatal(err)
		}
		clock.Drain(0)
		if mon.TotalLikes() != 1000 {
			b.Fatalf("monitor observed %d likes", mon.TotalLikes())
		}
	}
}

// ---- Journal and one-pass analysis benches (DESIGN.md §8) ----

// BenchmarkJournalMillionLikes is the million-like ingest bench: a
// quarter-million users bulk-import four-page histories (the journal's
// batched append path) and the canonical merged view is materialized
// once — the exact shape of the study's materialize-then-analyze phase
// at production scale.
func BenchmarkJournalMillionLikes(b *testing.B) {
	const nUsers = 1 << 18 // 262,144 users
	const perUser = 4      // -> ~1M like events
	const nPages = 512
	t0 := core.StudyStart.AddDate(-1, 0, 0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := socialnet.NewStore()
		users := make([]socialnet.UserID, nUsers)
		for j := range users {
			users[j] = st.AddUser(socialnet.User{Country: socialnet.CountryUSA})
		}
		pages := make([]socialnet.PageID, nPages)
		for j := range pages {
			pages[j], _ = st.AddPage(socialnet.Page{Name: fmt.Sprintf("p%d", j)})
		}
		b.StartTimer()
		likes := make([]socialnet.Like, perUser)
		for j, u := range users {
			for k := 0; k < perUser; k++ {
				// 131 is coprime to 512: distinct pages per user.
				likes[k] = socialnet.Like{
					Page: pages[(j+131*k)%nPages],
					At:   t0.Add(time.Duration((j*perUser+k)%100000) * time.Second),
				}
			}
			if err := st.AddHistory(u, likes); err != nil {
				b.Fatal(err)
			}
		}
		evs := st.Journal().EventsCanonical(0)
		if len(evs) != nUsers*perUser {
			b.Fatalf("journal holds %d events, want %d", len(evs), nUsers*perUser)
		}
	}
	b.ReportMetric(float64(nUsers*perUser), "likes/op")
}

// BenchmarkMonitorTickIncremental proves the §3 monitor's ticks are
// O(new likes), not O(all likes): after a backlog of any size, a quiet
// poll costs the same — while the pre-journal full-rescan approach
// (simulated by the "rescan" sub-benches) scales linearly with the
// backlog.
func BenchmarkMonitorTickIncremental(b *testing.B) {
	setup := func(b *testing.B, backlog int) (*socialnet.Store, socialnet.PageID, *simclock.Clock) {
		b.Helper()
		st := socialnet.NewStore()
		page, err := st.AddPage(socialnet.Page{Name: "p", Honeypot: true})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < backlog; j++ {
			u := st.AddUser(socialnet.User{Country: socialnet.CountryUSA})
			if err := st.AddLike(u, page, core.StudyStart.Add(time.Duration(j)*time.Second)); err != nil {
				b.Fatal(err)
			}
		}
		return st, page, simclock.New(core.StudyStart.AddDate(0, 1, 0))
	}
	for _, backlog := range []int{10_000, 100_000, 500_000} {
		backlog := backlog
		b.Run(fmt.Sprintf("backlog=%d/incremental", backlog), func(b *testing.B) {
			st, page, clock := setup(b, backlog)
			cfg := honeypot.DefaultMonitorConfig(100000) // stay in the active phase
			cfg.MaxDays = 0
			mon, err := honeypot.StartMonitor(clock, st, page, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.RunFor(2 * time.Hour) // exactly one quiet poll
			}
			b.StopTimer()
			if mon.TotalLikes() != backlog {
				b.Fatalf("monitor observed %d of %d likes", mon.TotalLikes(), backlog)
			}
		})
		b.Run(fmt.Sprintf("backlog=%d/rescan", backlog), func(b *testing.B) {
			st, page, _ := setup(b, backlog)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The pre-journal monitor re-read the cumulative stream
				// on every poll.
				if got := len(st.LikesOfPage(page)); got != backlog {
					b.Fatalf("rescan saw %d likes", got)
				}
			}
		})
	}
}

// BenchmarkAnalysisOnePass measures the streaming analysis phase in
// isolation: one canonical journal materialization feeding all six
// like-scan aggregators.
func BenchmarkAnalysisOnePass(b *testing.B) {
	s, res := benchSetup(b)
	st := s.Store()
	camps := analysisCampaigns(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geo := analysis.NewGeoAggregator(st, camps)
		demo := analysis.NewDemoAggregator(st, camps)
		win := analysis.NewWindowAggregator(camps)
		cdf := analysis.NewPageLikeCDFAggregator(camps, res.Baseline)
		jac := analysis.NewJaccardAggregator(camps)
		rem := analysis.NewRemovedLikesAggregator(st, camps)
		err := analysis.RunPass(st.Journal(), camps, res.Baseline, 0,
			geo, demo, win, cdf, jac, rem)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisMultiScan measures the legacy analysis phase: one
// full store scan per analysis (the baseline BenchmarkAnalysisOnePass
// replaces). Note this bench flatters the legacy path: repeated
// iterations reuse the store's lazy per-user sort caches, which a real
// run pays for cold — the end-to-end comparison (BenchmarkFullStudy vs
// BenchmarkFullStudyMultiScan) is the honest one, and there the
// one-pass engine wins.
func BenchmarkAnalysisMultiScan(b *testing.B) {
	s, res := benchSetup(b)
	st := s.Store()
	camps := analysisCampaigns(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.LocationBreakdown(st, camps); err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.Demographics(st, camps); err != nil {
			b.Fatal(err)
		}
		if _, err := analysis.PageLikeCDFs(st, camps, res.Baseline); err != nil {
			b.Fatal(err)
		}
		if _, _, err := analysis.JaccardMatrices(st, camps); err != nil {
			b.Fatal(err)
		}
		for _, c := range camps {
			likes := st.LikesOfPage(c.Page)
			times := make([]time.Time, len(likes))
			for j, lk := range likes {
				times[j] = lk.At
			}
			if _, err := analysis.WindowAnalysis(c.ID, times); err != nil {
				b.Fatal(err)
			}
			_ = st.LikeCountOfPage(c.Page) - st.ActiveLikeCountOfPage(c.Page)
		}
	}
}
