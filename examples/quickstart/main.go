// Quickstart: deploy one honeypot page, buy likes from a burst farm,
// monitor the page on the paper's cadence, and print what the like
// stream looks like — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/accounts"
	"repro/internal/farm"
	"repro/internal/honeypot"
	"repro/internal/simclock"
	"repro/internal/socialnet"
	"repro/internal/stats"
)

func main() {
	r := rand.New(rand.NewSource(42))
	st := socialnet.NewStore()

	// 1. An organic world to embed the farm in.
	popSpec := socialnet.DefaultPopulationSpec()
	popSpec.NumUsers = 500
	popSpec.NumAmbientPages = 600
	pop, err := socialnet.GeneratePopulation(r, st, popSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d organic users, %d ambient pages\n", len(pop.Users), len(pop.AmbientPages))

	// 2. A burst farm with 300 disposable Turkish accounts.
	pool, err := accounts.Build(r, st, pop, accounts.CohortSpec{
		Name: "demo-farm-pool", Size: 300,
		Kind:              socialnet.KindFarmBot,
		Operator:          "DemoFarm",
		CountryMix:        stats.MustCategorical([]string{socialnet.CountryTurkey}, []float64{1}),
		Profile:           socialnet.GlobalFacebookProfile(),
		FriendsPublicFrac: 0.6, SearchableFrac: 0,
		Topology: accounts.TopologySpec{
			Kind: accounts.TopologyIslands, InternalPairFrac: 0.1, TripletFrac: 0.3,
			DeclaredMedian: 150, DeclaredSigma: 0.9,
		},
		Cover:     accounts.CoverSpec{LikeMedian: 200, LikeSigma: 0.8, MaxLikes: 1000, Bursty: true},
		CreatedAt: time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}
	demoFarm, err := farm.New(r, st, farm.Config{Name: "DemoFarm", Mode: farm.ModeBurst}, pool, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Deploy the honeypot and place a 250-like order.
	start := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	clock := simclock.New(start)
	page, _, err := honeypot.Deploy(st, "QUICKSTART", start)
	if err != nil {
		log.Fatal(err)
	}
	err = demoFarm.PlaceOrder(clock, farm.Order{
		Campaign: "QS-1", Page: page, Quantity: 250, DurationDays: 3, Bursts: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Monitor every 2 virtual hours until a quiet week.
	mon, err := honeypot.StartMonitor(clock, st, page, honeypot.DefaultMonitorConfig(3))
	if err != nil {
		log.Fatal(err)
	}
	clock.Drain(0)

	stopped, at := mon.Stopped()
	fmt.Printf("monitor stopped=%v after %d days (at %s)\n",
		stopped, mon.MonitoringDays(clock.Now()), at.Format("2006-01-02"))
	fmt.Printf("observed %d likes from %d likers\n", mon.TotalLikes(), len(mon.Likers()))

	series := mon.CumulativeByDay(10)
	fmt.Println("cumulative likes by day:")
	for d, v := range series {
		fmt.Printf("  day %2d: %4d\n", d, v)
	}

	// 5. The burst signature: how tightly were likes packed?
	likes := st.LikesOfPage(page)
	first, last := likes[0].At, likes[len(likes)-1].At
	fmt.Printf("all %d likes delivered within %s — the bot-farm signature\n",
		len(likes), last.Sub(first).Round(time.Minute))
}
