// Crawlhttp: end-to-end HTTP data collection, the way the paper's
// Selenium crawler worked (§3). The example builds a world, serves it
// over a local HTTP API, and collects every liker of two contrasting
// honeypot campaigns through the concurrent crawl pipeline: cursor
// paging over the like streams (stable even while campaigns are still
// delivering), batched profile fetches fanned over workers behind one
// shared politeness limiter, cross-campaign dedup, and a checkpoint
// that makes a second crawl a no-op. The paper's per-campaign
// statistics are then recomputed purely from crawled data.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/stats"
)

func main() {
	cfg, err := core.ScaledConfig(11, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building world and running campaigns...")
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Serve the platform over HTTP (in-process listener).
	srv := httptest.NewServer(api.NewServer(study.Store(), "admin-token"))
	defer srv.Close()
	fmt.Printf("platform served at %s\n", srv.URL)

	ccfg := crawler.DefaultConfig(srv.URL)
	ccfg.MinInterval = 0 // local loopback: no politeness needed
	ccfg.AdminToken = "admin-token"
	cl, err := crawler.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Crawl the two most contrasting campaigns: the stealth farm and a
	// burst farm.
	pageOf := map[int64]string{}
	var pages []int64
	for _, c := range res.Campaigns {
		if c.Spec.ID == "BL-USA" || c.Spec.ID == "SF-ALL" {
			pageOf[int64(c.Page)] = c.Spec.ID
			pages = append(pages, int64(c.Page))
		}
	}

	pipe := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 8, BatchSize: 25}, nil)
	profiles := map[int64][]crawler.LikerProfile{}
	fmt.Printf("\ncrawling %d campaigns through the 8-worker pipeline...\n", len(pages))
	if err := pipe.Crawl(ctx, pages, func(page int64, prof crawler.LikerProfile) error {
		profiles[page] = append(profiles[page], prof)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	for _, page := range pages {
		fmt.Printf("\n== %s (page %d), crawled over HTTP ==\n", pageOf[page], page)
		hidden := 0
		var friendCounts, likeCounts []float64
		for _, p := range profiles[page] {
			if p.FriendsHidden {
				hidden++
			} else {
				friendCounts = append(friendCounts, float64(p.User.DeclaredFriends))
			}
			likeCounts = append(likeCounts, float64(len(p.PageLikes)))
		}
		fmt.Printf("likers crawled: %d (friend lists private: %d)\n", len(profiles[page]), hidden)
		if len(friendCounts) > 0 {
			med, _ := stats.Median(friendCounts)
			fmt.Printf("median friends (public lists): %.0f\n", med)
		}
		if len(likeCounts) > 0 {
			med, _ := stats.Median(likeCounts)
			fmt.Printf("median page-likes per liker:   %.0f\n", med)
		}
		rep, err := cl.AdminReport(ctx, page)
		if err != nil {
			log.Fatal(err)
		}
		var countries []string
		for c := range rep.CountryCounts {
			countries = append(countries, c)
		}
		sort.Slice(countries, func(i, j int) bool {
			return rep.CountryCounts[countries[i]] > rep.CountryCounts[countries[j]]
		})
		fmt.Printf("admin report: %d likes; top countries:", rep.TotalLikes)
		for i, c := range countries {
			if i >= 3 {
				break
			}
			fmt.Printf(" %s(%d)", c, rep.CountryCounts[c])
		}
		fmt.Println()
	}
	fmt.Printf("\ncrawler issued %d HTTP requests (%d retries)\n", cl.Requests(), cl.Retries())

	// Resume from the checkpoint: everything is already crawled, so the
	// second pass costs one tail probe per page and fetches no profiles.
	ck := pipe.Checkpoint()
	before := cl.Requests()
	resumed := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 8}, &ck)
	refetched := 0
	if err := resumed.Crawl(ctx, pages, func(int64, crawler.LikerProfile) error { refetched++; return nil }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume from checkpoint: %d profiles refetched, %d extra requests\n",
		refetched, cl.Requests()-before)
}
