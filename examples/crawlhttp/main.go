// Crawlhttp: end-to-end HTTP data collection, the way the paper's
// Selenium crawler worked (§3). The example builds a world, serves it
// over a local HTTP API, and collects every liker of every honeypot
// campaign through the concurrent crawl pipeline: cursor paging over
// the like streams (stable even while campaigns are still delivering),
// batched profile fetches fanned over workers behind one shared
// politeness limiter, cross-campaign dedup, and a checkpoint that
// makes a second crawl a no-op.
//
// The §4 tables are computed WHILE the crawl runs: an AnalysisSink
// streams every crawled profile and like window straight into the
// crawl-side aggregator family, so no profile slice is ever
// materialized — and the resulting tables are byte-identical to what
// the local journal engine computes from the same world.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/report"
)

func main() {
	cfg, err := core.ScaledConfig(11, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building world and running campaigns...")
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Serve the platform over HTTP (in-process listener).
	srv := httptest.NewServer(api.NewServer(study.Store(), "admin-token"))
	defer srv.Close()
	fmt.Printf("platform served at %s\n", srv.URL)

	ccfg := crawler.DefaultConfig(srv.URL)
	ccfg.MinInterval = 0 // local loopback: no politeness needed
	ccfg.AdminToken = "admin-token"
	cl, err := crawler.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The crawl-side roster: what a crawler can know (page, label,
	// whether anything was delivered) — NOT the monitor's liker lists.
	var roster []analysis.CrawlCampaign
	var pages []int64
	for _, c := range res.Campaigns {
		roster = append(roster, analysis.CrawlCampaign{ID: c.Spec.ID, Page: c.Page, Active: c.Active})
		pages = append(pages, int64(c.Page))
	}
	var baseline []int64
	for _, u := range res.Baseline {
		baseline = append(baseline, int64(u))
	}

	analyzer := analysis.NewCrawlAnalyzer(roster, res.Baseline)
	sink := crawler.NewAnalysisSink(analyzer.Aggregators()...)
	pipe := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 8, BatchSize: 25, Sink: sink}, nil)

	fmt.Printf("\ncrawling %d campaign pages + %d baseline profiles through the 8-worker pipeline...\n",
		len(pages), len(baseline))
	crawled := 0
	count := func(int64, crawler.LikerProfile) error { crawled++; return nil }
	if err := pipe.Crawl(ctx, pages, count); err != nil {
		log.Fatal(err)
	}
	if err := pipe.CrawlProfiles(ctx, baseline, count); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d profiles with %d HTTP requests (%d retries) — none retained in memory\n",
		crawled, cl.Requests(), cl.Retries())

	// Finalize the crawl-side §4 tables and compare against the journal
	// engine byte-for-byte.
	tables, err := analyzer.Tables()
	if err != nil {
		log.Fatal(err)
	}
	crawlJSON, err := tables.MarshalStable()
	if err != nil {
		log.Fatal(err)
	}
	jt := res.CrawlTables()
	journalJSON, err := jt.MarshalStable()
	if err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(crawlJSON, journalJSON) {
		fmt.Printf("\ncrawl-derived §4 tables == journal-engine tables (%d bytes, byte-identical)\n", len(crawlJSON))
	} else {
		fmt.Println("\nWARNING: crawl-derived tables diverge from the journal engine")
	}

	// A taste of the recomputed artifacts, straight from the crawl.
	t := report.NewTable("Table 2 (recomputed from the HTTP crawl)", "Campaign", "%F/%M", "N", "KL")
	for _, row := range tables.Demo {
		t.AddRow(row.CampaignID,
			fmt.Sprintf("%s/%s", report.F(row.FemalePct, 0), report.F(row.MalePct, 0)),
			fmt.Sprintf("%d", row.N), report.F(row.KL, 2))
	}
	fmt.Println(t.String())

	// Resume from the checkpoint: everything is already crawled — and
	// the aggregator state rides along, so a resumed process could
	// finalize the same tables without refetching a single profile.
	ck := pipe.Checkpoint()
	before := cl.Requests()
	analyzer2 := analysis.NewCrawlAnalyzer(roster, res.Baseline)
	sink2 := crawler.NewAnalysisSink(analyzer2.Aggregators()...)
	if err := sink2.Restore(ck.Sink); err != nil {
		log.Fatal(err)
	}
	resumed := crawler.NewPipeline(cl, crawler.PipelineConfig{Workers: 8, Sink: sink2}, &ck)
	refetched := 0
	if err := resumed.Crawl(ctx, pages, func(int64, crawler.LikerProfile) error { refetched++; return nil }); err != nil {
		log.Fatal(err)
	}
	if err := resumed.CrawlProfiles(ctx, baseline, func(int64, crawler.LikerProfile) error { refetched++; return nil }); err != nil {
		log.Fatal(err)
	}
	tables2, err := analyzer2.Tables()
	if err != nil {
		log.Fatal(err)
	}
	resumedJSON, err := tables2.MarshalStable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume from checkpoint: %d profiles refetched, %d extra requests, tables identical: %v\n",
		refetched, cl.Requests()-before, bytes.Equal(resumedJSON, crawlJSON))
}
