// Crawlhttp: end-to-end HTTP data collection, the way the paper's
// Selenium crawler worked (§3). The example builds a world, serves it
// over a local HTTP API, crawls every liker of a honeypot page through
// the network stack — profiles, friend lists (respecting privacy),
// page-like lists, the admin report — and recomputes the paper's
// per-campaign statistics purely from crawled data.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/stats"
)

func main() {
	cfg, err := core.ScaledConfig(11, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building world and running campaigns...")
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Serve the platform over HTTP (in-process listener).
	srv := httptest.NewServer(api.NewServer(study.Store(), "admin-token"))
	defer srv.Close()
	fmt.Printf("platform served at %s\n", srv.URL)

	ccfg := crawler.DefaultConfig(srv.URL)
	ccfg.MinInterval = 0 // local loopback: no politeness needed
	ccfg.AdminToken = "admin-token"
	cl, err := crawler.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Crawl the two most contrasting campaigns: the stealth farm and a
	// burst farm.
	targets := map[string]int64{}
	for _, c := range res.Campaigns {
		if c.Spec.ID == "BL-USA" || c.Spec.ID == "SF-ALL" {
			targets[c.Spec.ID] = int64(c.Page)
		}
	}
	for _, id := range []string{"BL-USA", "SF-ALL"} {
		page := targets[id]
		fmt.Printf("\n== crawling %s (page %d) over HTTP ==\n", id, page)
		profiles, err := cl.CrawlLikers(ctx, page)
		if err != nil {
			log.Fatal(err)
		}
		hidden := 0
		var friendCounts, likeCounts []float64
		for _, p := range profiles {
			if p.FriendsHidden {
				hidden++
			} else {
				friendCounts = append(friendCounts, float64(p.User.DeclaredFriends))
			}
			likeCounts = append(likeCounts, float64(len(p.PageLikes)))
		}
		fmt.Printf("likers crawled: %d (friend lists private: %d)\n", len(profiles), hidden)
		if len(friendCounts) > 0 {
			med, _ := stats.Median(friendCounts)
			fmt.Printf("median friends (public lists): %.0f\n", med)
		}
		if len(likeCounts) > 0 {
			med, _ := stats.Median(likeCounts)
			fmt.Printf("median page-likes per liker:   %.0f\n", med)
		}
		rep, err := cl.AdminReport(ctx, page)
		if err != nil {
			log.Fatal(err)
		}
		var countries []string
		for c := range rep.CountryCounts {
			countries = append(countries, c)
		}
		sort.Slice(countries, func(i, j int) bool {
			return rep.CountryCounts[countries[i]] > rep.CountryCounts[countries[j]]
		})
		fmt.Printf("admin report: %d likes; top countries:", rep.TotalLikes)
		for i, c := range countries {
			if i >= 3 {
				break
			}
			fmt.Printf(" %s(%d)", c, rep.CountryCounts[c])
		}
		fmt.Println()
	}
	fmt.Printf("\ncrawler issued %d HTTP requests (%d retries)\n", cl.Requests, cl.Retries)
}
