// Durable: run the study's world phases, persist everything to disk,
// pretend the process died, reopen the world, and finalize the paper's
// analyses from the recovered state — then prove the crash story by
// writing likes through the journal WAL, "crashing" without a clean
// shutdown, and reopening again.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/socialnet"
)

func main() {
	dir, err := os.MkdirTemp("", "likefraud-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Run the world phases (deploy, promote, monitor, sweep) and
	// persist: a snapshot + manifest + the study's run state.
	cfg, err := core.ScaledConfig(2014, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := study.RunWorld(); err != nil {
		log.Fatal(err)
	}
	if err := study.Persist(dir); err != nil {
		log.Fatal(err)
	}
	direct, err := study.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	directJSON, err := direct.MarshalJSONStable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran and persisted study world to %s\n", dir)

	// 2. "Restart": reopen from disk and finalize — byte-identical.
	reopened, err := core.ReopenStudy(cfg, dir, socialnet.WALOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := reopened.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	reJSON, err := res.MarshalJSONStable()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened world: %d users, %d pages, %d journal events\n",
		reopened.Store().NumUsers(), reopened.Store().NumPages(), reopened.Store().Journal().Len())
	fmt.Printf("finalize after restart is byte-identical: %v (%d bytes)\n",
		bytes.Equal(directJSON, reJSON), len(reJSON))

	// 3. Live writes through the WAL: add likes, skip the clean
	// shutdown (no Checkpoint, only Sync — as a crash after fsync
	// would), and reopen: the likes survive via segment tail replay.
	st := reopened.Store()
	page := res.Campaigns[0].Page
	added := 0
	for uid := socialnet.UserID(1); added < 25; uid++ {
		if st.AddLike(uid, page, time.Now().UTC()) == nil {
			added++
		}
	}
	if err := st.Sync(); err != nil {
		log.Fatal(err)
	}
	before := st.LikeCountOfPage(page)
	// No st.Close(), no Checkpoint: this is the simulated crash.

	again, stats, err := socialnet.OpenDurable(dir, socialnet.WALOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer again.Close()
	fmt.Printf("after simulated crash: page %d has %d likes (was %d), %d events replayed from WAL tail\n",
		page, again.LikeCountOfPage(page), before, stats.TailEvents)
	if again.LikeCountOfPage(page) != before {
		log.Fatal("durable journal lost likes")
	}
}
