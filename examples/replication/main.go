// Replication: journal segment shipping from a durable leader to a
// read replica (DESIGN §15). The example checkpoints a small world,
// reopens it through the journal as a replication leader, and serves
// it over HTTP; a follower bootstraps from the leader's snapshot and
// tails its WAL segments — raw CRC-framed bytes, the same frames the
// leader fsynced — through the admin-gated /api/repl/* endpoints.
//
// The replica then serves the full read API itself: reads match the
// leader byte-for-byte, every response carries the X-Repl-Offsets
// staleness header (per-shard applied offsets, comparable against the
// leader's fsync horizon), and writes are rejected with 403 — they go
// to the leader, and the next poll ships them over.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/socialnet"
)

const adminToken = "admin-token"

func main() {
	leaderDir, err := os.MkdirTemp("", "repl-leader-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(leaderDir)
	followerDir, err := os.MkdirTemp("", "repl-follower-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(followerDir)

	// Build a small world, checkpoint it, and reopen it through the
	// journal: the durable store is the replication leader.
	seedStore := socialnet.NewShardedStore(4)
	page, err := seedStore.AddPage(socialnet.Page{Name: "honeypot", Honeypot: true})
	if err != nil {
		log.Fatal(err)
	}
	base := time.Date(2014, 3, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 25; i++ {
		u := seedStore.AddUser(socialnet.User{Country: "USA", Searchable: true})
		if err := seedStore.AddLike(u, page, base.Add(time.Duration(i)*time.Minute)); err != nil {
			log.Fatal(err)
		}
	}
	if err := seedStore.Checkpoint(leaderDir); err != nil {
		log.Fatal(err)
	}
	leader, stats, err := socialnet.OpenDurable(leaderDir, socialnet.WALOptions{SyncInterval: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer leader.Close()
	fmt.Printf("leader: resumed world from %s (%d WAL tail events beyond the snapshot)\n",
		leaderDir, stats.TailEvents)

	leaderAPI := api.NewServer(leader, adminToken)
	leaderAPI.SetReplOffsets(func() []uint64 { return leader.ReplOffsets(nil) })
	leaderSrv := httptest.NewServer(leaderAPI)
	defer leaderSrv.Close()
	fmt.Printf("leader serving at %s (repl feed admin-gated)\n", leaderSrv.URL)

	// Bootstrap a follower entirely over HTTP: snapshot + manifest
	// first, then per-shard segment tailing from the snapshot offsets.
	ctx := context.Background()
	src := api.NewReplHTTPSource(leaderSrv.URL, adminToken, nil)
	fw, fstats, err := socialnet.OpenFollower(ctx, followerDir, src, socialnet.FollowerOptions{
		WAL: socialnet.WALOptions{SyncInterval: -1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()
	fmt.Printf("follower: bootstrapped leader snapshot into %s (%d tail events at open)\n",
		followerDir, fstats.TailEvents)
	if _, err := fw.Poll(ctx); err != nil {
		log.Fatal(err)
	}

	replicaAPI := api.NewServer(fw.Store(), adminToken)
	replicaAPI.SetReadOnly(true)
	replicaAPI.SetReplOffsets(func() []uint64 { return fw.Offsets(nil) })
	replicaSrv := httptest.NewServer(replicaAPI)
	defer replicaSrv.Close()
	fmt.Printf("replica serving at %s (read-only)\n\n", replicaSrv.URL)

	// Both nodes answer the same read; the replica stamps its applied
	// offsets so clients can measure staleness in records, not time.
	path := fmt.Sprintf("/api/page/%d", page)
	fmt.Printf("leader  %s -> %s", path, getBody(leaderSrv.URL+path))
	body, offsets := getWithOffsets(replicaSrv.URL + path)
	fmt.Printf("replica %s -> %s", path, body)
	fmt.Printf("replica X-Repl-Offsets: %s\n\n", offsets)

	// Writes go to the leader. The replica refuses them even with the
	// admin token — read-only is a role, not a permission.
	code := postLike(replicaSrv.URL, path, 1_000_000)
	fmt.Printf("POST like on the replica -> %d (writes go to the leader)\n", code)

	// A live write on the leader: append, fsync — now it is below the
	// publish horizon — and one poll ships it to the replica.
	newUser := leader.AddUser(socialnet.User{Country: "FRA", Searchable: true})
	if err := leader.AddLike(newUser, page, base.Add(2*time.Hour)); err != nil {
		log.Fatal(err)
	}
	if err := leader.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected 1 live like on the leader (user %d) and fsynced\n", newUser)

	n, err := fw.Poll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("follower poll applied %d records\n", n)
	body, offsets = getWithOffsets(replicaSrv.URL + path)
	fmt.Printf("replica %s -> %s", path, body)
	fmt.Printf("replica X-Repl-Offsets: %s (leader horizon: %s)\n",
		offsets, offsetsCSV(leader.ReplOffsets(nil)))

	// The shipped journal is the leader's journal: the canonical event
	// streams agree record-for-record.
	lev := leader.Journal().EventsCanonical(1)
	fev := fw.Store().Journal().EventsCanonical(1)
	fmt.Printf("\ncanonical event streams: leader %d events, follower %d events, converged: %v\n",
		len(lev), len(fev), len(lev) == len(fev) && likersMatch(lev, fev))

	// A follower checkpoint rolls its local chain exactly like the
	// leader's (§10): the next restart bootstraps from local disk and
	// resumes tailing from its own manifest offsets.
	if err := fw.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("follower checkpointed its local journal — restart resumes from local disk")
}

func getBody(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}

func getWithOffsets(url string) (body, offsets string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b), resp.Header.Get("X-Repl-Offsets")
}

func postLike(baseURL, pagePath string, user int64) int {
	req, err := http.NewRequest(http.MethodPost, baseURL+pagePath+"/likes",
		strings.NewReader(fmt.Sprintf(`{"user": %d}`, user)))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-Admin-Token", adminToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func offsetsCSV(offs []uint64) string {
	var b strings.Builder
	for i, o := range offs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", o)
	}
	return b.String()
}

func likersMatch(a, b []socialnet.LikeEvent) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
