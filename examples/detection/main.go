// Detection: run the fraud detectors the paper's findings motivate (§5)
// against simulated farm traffic with known ground truth, and report
// precision/recall per detector — burst scoring, lockstep (CopyCatch-
// style) co-liking, and the composite account scorer.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/socialnet"
)

func main() {
	cfg, err := core.ScaledConfig(7, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running the scaled 13-campaign study to generate labelled traffic...")
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := study.Store()

	// Ground truth: account Kind (never visible to the detectors).
	var likers []socialnet.UserID
	var pages []socialnet.PageID
	seen := map[socialnet.UserID]bool{}
	for _, c := range res.Campaigns {
		pages = append(pages, c.Page)
		for _, u := range c.Likers {
			if !seen[u] {
				seen[u] = true
				likers = append(likers, u)
			}
		}
	}
	isFake := func(u socialnet.UserID) bool {
		usr, err := st.User(u)
		return err == nil && usr.Kind != socialnet.KindOrganic
	}
	nFake := 0
	for _, u := range likers {
		if isFake(u) {
			nFake++
		}
	}
	fmt.Printf("%d honeypot likers, %d farm-controlled (ground truth)\n\n", len(likers), nFake)

	// Detector 1: composite account scorer at various thresholds.
	fmt.Println("== Composite account scorer ==")
	islands := detect.IsolatedIslands(st.FriendGraph(), likers)
	scores := map[socialnet.UserID]float64{}
	for _, u := range likers {
		f, err := detect.ExtractFeatures(st, u)
		if err != nil {
			log.Fatal(err)
		}
		f.IslandSize = islands[u]
		scores[u] = f.Score()
	}
	fmt.Printf("%-10s %-10s %-10s %-10s\n", "threshold", "flagged", "precision", "recall")
	for _, thr := range []float64{0.2, 0.4, 0.6, 0.8} {
		tp, fp := 0, 0
		for _, u := range likers {
			if scores[u] >= thr {
				if isFake(u) {
					tp++
				} else {
					fp++
				}
			}
		}
		prec, rec := 0.0, 0.0
		if tp+fp > 0 {
			prec = float64(tp) / float64(tp+fp)
		}
		if nFake > 0 {
			rec = float64(tp) / float64(nFake)
		}
		fmt.Printf("%-10.1f %-10d %-10.2f %-10.2f\n", thr, tp+fp, prec, rec)
	}

	// Detector 2: lockstep co-liking over the honeypot pages, served by
	// the STREAMING scorer's per-page co-action sketches. Draining the
	// journal tick by tick yields groups byte-identical to the batch
	// detect.Lockstep fold — the one detection core, two consumption
	// modes.
	fmt.Println("\n== Lockstep (CopyCatch-style) detector, streaming ==")
	sc := detect.NewStreamScorer(st, detect.StreamScorerConfig{Pages: pages})
	for sc.Tick() > 0 {
	}
	groups := sc.LockstepGroups()
	sort.Slice(groups, func(i, j int) bool { return len(groups[i].Users) > len(groups[j].Users) })
	caught := map[socialnet.UserID]bool{}
	for _, g := range groups {
		for _, u := range g.Users {
			caught[u] = true
		}
	}
	tp, fp := 0, 0
	for u := range caught {
		if isFake(u) {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("groups: %d; users flagged: %d (true fakes %d, organic %d)\n", len(groups), len(caught), tp, fp)
	for i, g := range groups {
		if i >= 5 {
			fmt.Printf("  ... and %d more groups\n", len(groups)-5)
			break
		}
		fmt.Printf("  group %d: %d users locksteping across %d pages\n", i+1, len(g.Users), len(g.Pages))
	}

	// The stealth-farm blind spot the paper warns about.
	fmt.Println("\n== The BoostLikes blind spot ==")
	var blMissed, blTotal int
	for _, u := range likers {
		usr, _ := st.User(u)
		if usr.Kind == socialnet.KindFarmStealth {
			blTotal++
			if scores[u] < 0.2 && !caught[u] {
				blMissed++
			}
		}
	}
	fmt.Printf("stealth-farm accounts among likers: %d; invisible to both detectors: %d (%.0f%%)\n",
		blTotal, blMissed, 100*float64(blMissed)/float64(max(1, blTotal)))
	fmt.Println("— mirroring §5: farms mimicking regular users make fake-like detection hard.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
