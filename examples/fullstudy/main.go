// Fullstudy: the complete 13-campaign reproduction of the paper, at a
// configurable scale, printing every table and figure of §4-5 in paper
// order. At -scale 1 this is the full-size experiment (a few minutes and
// several GB); the default 0.25 keeps the structure and the findings.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	seed := flag.Int64("seed", 2014, "random seed")
	scale := flag.Float64("scale", 0.25, "study scale in (0,1]")
	out := flag.String("out", "", "optional path to also write the report to")
	flag.Parse()

	cfg, err := core.ScaledConfig(*seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "running the 13-campaign honeypot study (seed %d, scale %.2f)...\n", *seed, *scale)
	t := time.Now()
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %s; %d cover likes materialized for the crawled likers\n",
		time.Since(t).Round(time.Millisecond), res.HistoryLikes)

	report := res.RenderAll()
	fmt.Println(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}

	// Headline findings, spelled out the way the paper's §5 does.
	fmt.Println("== Headline findings ==")
	byID := map[string]core.CampaignResult{}
	for _, c := range res.Campaigns {
		byID[c.Spec.ID] = c
	}
	fmt.Printf("1. Geography: FB-ALL (worldwide targeting) delivered almost entirely from India;\n")
	fmt.Printf("   SocialFormula delivered Turkish likes even for its USA order.\n")
	fmt.Printf("2. Two modi operandi: SF/AL/MS dumped likes in bursts within days;\n")
	fmt.Printf("   BoostLikes trickled %d likes across the full 15 days like a real campaign.\n", byID["BL-USA"].Likes)
	fmt.Printf("3. Never delivered: BL-ALL and MS-ALL took the money and shipped nothing.\n")
	fmt.Printf("4. A month later the platform had terminated %d SF, %d+%d AL, %d MS accounts\n",
		byID["SF-ALL"].Terminated+byID["SF-USA"].Terminated,
		byID["AL-ALL"].Terminated, byID["AL-USA"].Terminated,
		byID["MS-USA"].Terminated)
	fmt.Printf("   but only %d BoostLikes account(s) — the stealth strategy works.\n", byID["BL-USA"].Terminated)
}
